package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hybridprng "repro"
)

// TestDrainHandsOverExactState is the node-side half of the fleet's
// stream-preserving drain: serve part of a stream, POST /drain, boot
// a successor from the returned blob, serve the rest — the
// concatenation must be bitwise identical to an uninterrupted run,
// and the drained node must refuse every further draw (one more word
// served there would fork the successor's streams).
func TestDrainHandsOverExactState(t *testing.T) {
	const (
		wordsBefore = chunkWords
		wordsAfter  = 2 * chunkWords
	)
	poolA, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srvA, err := New(poolA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	htA := httptest.NewServer(srvA.Handler())
	defer htA.Close()
	before := getStream(t, htA.URL, wordsBefore)

	resp, err := http.Post(htA.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d err %v: %s", resp.StatusCode, err, blob)
	}
	if resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("drain content-type %q", resp.Header.Get("Content-Type"))
	}

	// The drained node is done serving: draws 503, drain again 409,
	// healthz 503 with a machine-readable reason.
	if code, body := get(t, htA.URL+"/u64"); code != http.StatusServiceUnavailable {
		t.Fatalf("draw after drain: %d %s, want 503", code, body)
	}
	resp, err = http.Post(htA.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second drain: %d, want 409", resp.StatusCode)
	}
	code, body := get(t, htA.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d %s, want 503", code, body)
	}
	var hb HealthBody
	if err := json.Unmarshal(body, &hb); err != nil {
		t.Fatalf("healthz body not JSON: %v: %s", err, body)
	}
	if !hb.Draining || hb.Status != "unhealthy" {
		t.Fatalf("healthz body %+v, want draining unhealthy", hb)
	}

	// Successor boots from the blob and continues the streams.
	poolB := new(hybridprng.Pool)
	if err := poolB.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	srvB, err := New(poolB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	htB := httptest.NewServer(srvB.Handler())
	defer htB.Close()
	after := getStream(t, htB.URL, wordsAfter)

	poolC, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srvC, err := New(poolC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	htC := httptest.NewServer(srvC.Handler())
	defer htC.Close()
	uninterrupted := getStream(t, htC.URL, wordsBefore+wordsAfter)

	resumed := append(append([]byte(nil), before...), after...)
	if !bytes.Equal(resumed, uninterrupted) {
		i := 0
		for i < len(resumed) && resumed[i] == uninterrupted[i] {
			i++
		}
		t.Fatalf("drained handoff diverges from uninterrupted run at byte %d of %d", i, len(resumed))
	}
}

// TestDrainWaitsForInFlight: the snapshot must land at a request
// boundary, so /drain blocks until in-flight draws complete — and a
// draw that outlasts DrainWait aborts the drain and puts the node
// back in service instead of wedging it half-drained.
func TestDrainWaitsForInFlight(t *testing.T) {
	pool, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()

	// Hold a slow /stream open, then start the drain: it must block.
	resp, err := http.Get(ht.URL + "/stream?words=100000")
	if err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	if _, err := io.ReadFull(resp.Body, one[:]); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var drainCode int
	var drainBody []byte
	go func() {
		defer wg.Done()
		dresp, err := http.Post(ht.URL+"/drain", "", nil)
		if err != nil {
			return
		}
		defer dresp.Body.Close()
		drainCode = dresp.StatusCode
		drainBody, _ = io.ReadAll(dresp.Body)
	}()

	// New draws are refused the moment the drain starts.
	deadline := time.After(5 * time.Second)
	for {
		code, _ := get(t, ht.URL+"/u64")
		if code == http.StatusServiceUnavailable {
			break
		}
		select {
		case <-deadline:
			t.Fatal("draws never started refusing during drain")
		case <-time.After(time.Millisecond):
		}
	}

	// Let the in-flight stream finish; the drain completes with the
	// blob only after it does.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wg.Wait()
	if drainCode != http.StatusOK || len(drainBody) == 0 {
		t.Fatalf("drain after stream finished: %d (%d bytes)", drainCode, len(drainBody))
	}
}

// TestDrainWaitsForInFlightWithSheddingDisabled: the drain's
// quiescence wait runs on the in-flight count, so the count must be
// maintained even when shedding is off (MaxInFlight < 0). A
// regression here lets /drain marshal the blob while a draw is still
// consuming the pool — the successor resumes forked streams.
func TestDrainWaitsForInFlightWithSheddingDisabled(t *testing.T) {
	pool, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{MaxInFlight: -1, DrainWait: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()

	// Pin an in-flight draw with an unbounded stream we never read out.
	resp, err := http.Get(ht.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	if _, err := io.ReadFull(resp.Body, one[:]); err != nil {
		t.Fatal(err)
	}

	// The drain must SEE that draw and abort when it outlasts
	// DrainWait — not conclude the pool is quiescent and hand the
	// blob over while the stream keeps drawing.
	dresp, err := http.Post(ht.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "in flight") {
		t.Fatalf("drain with shedding disabled and a live stream: %d %s, want 503 about in-flight draws", dresp.StatusCode, body)
	}
	resp.Body.Close()

	// With the stream gone the drain goes through.
	deadline := time.Now().Add(5 * time.Second)
	for {
		dresp, err := http.Post(ht.URL+"/drain", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(dresp.Body)
		dresp.Body.Close()
		if dresp.StatusCode == http.StatusOK && len(blob) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain after stream closed: %d (%d bytes)", dresp.StatusCode, len(blob))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUndrainRestoresService: /undrain is the orchestrator's rollback
// for a drain whose blob never reached a successor — it clears the
// latch, draws are admitted again, and a later drain can run.
func TestUndrainRestoresService(t *testing.T) {
	pool, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()

	resp, err := http.Post(ht.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	if code, _ := get(t, ht.URL+"/u64"); code != http.StatusServiceUnavailable {
		t.Fatalf("draw after drain: %d, want 503", code)
	}

	// GET is refused; POST clears the latch and says it did.
	gresp, err := http.Get(ht.URL + "/undrain")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /undrain: %d, want 405", gresp.StatusCode)
	}
	uresp, err := http.Post(ht.URL+"/undrain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var receipt struct {
		Draining    bool `json:"draining"`
		WasDraining bool `json:"was_draining"`
	}
	err = json.NewDecoder(uresp.Body).Decode(&receipt)
	uresp.Body.Close()
	if err != nil || uresp.StatusCode != http.StatusOK {
		t.Fatalf("undrain: %d err %v", uresp.StatusCode, err)
	}
	if receipt.Draining || !receipt.WasDraining {
		t.Fatalf("undrain receipt %+v, want draining=false was_draining=true", receipt)
	}
	if srv.Draining() {
		t.Fatal("server still draining after undrain")
	}
	if code, body := get(t, ht.URL+"/u64"); code != http.StatusOK {
		t.Fatalf("draw after undrain: %d %s", code, body)
	}

	// Idempotent, and a fresh drain works afterwards.
	uresp, err = http.Post(ht.URL+"/undrain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(uresp.Body).Decode(&receipt); err != nil {
		t.Fatal(err)
	}
	uresp.Body.Close()
	if receipt.WasDraining {
		t.Fatalf("second undrain receipt %+v, want was_draining=false", receipt)
	}
	resp, err = http.Post(ht.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Fatalf("drain after undrain: %d (%d bytes)", resp.StatusCode, len(blob))
	}
}

// TestDrainAbortRestoresService: when in-flight draws outlast
// DrainWait the drain gives up, and the node goes straight back to
// serving — a failed handoff must not strand capacity.
func TestDrainAbortRestoresService(t *testing.T) {
	pool, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{DrainWait: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()

	// Pin an in-flight slot with an unbounded stream we never read out.
	resp, err := http.Get(ht.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var one [1]byte
	if _, err := io.ReadFull(resp.Body, one[:]); err != nil {
		t.Fatal(err)
	}

	dresp, err := http.Post(ht.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "in flight") {
		t.Fatalf("stuck drain: %d %s, want 503 about in-flight draws", dresp.StatusCode, body)
	}
	if srv.Draining() {
		t.Fatal("server still draining after aborted drain")
	}
	if code, body := get(t, ht.URL+"/u64"); code != http.StatusOK {
		t.Fatalf("draw after aborted drain: %d %s", code, body)
	}
}
