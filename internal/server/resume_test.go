package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	hybridprng "repro"
)

// resumeOpts builds the fixed-seed pool configuration shared by the
// interrupted and uninterrupted runs.
func resumeOpts() []hybridprng.Option {
	return []hybridprng.Option{
		hybridprng.WithSeed(20240805),
		hybridprng.WithShards(4),
		hybridprng.WithShardBuffer(32),
		hybridprng.WithHealthMonitoring(4),
	}
}

func getStream(t *testing.T, base string, words int) []byte {
	t.Helper()
	resp, err := http.Get(base + "/stream?words=" + strconv.Itoa(words))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 8*words {
		t.Fatalf("stream returned %d bytes, want %d", len(body), 8*words)
	}
	return body
}

func postSnapshot(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Post(base+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, body)
	}
}

// TestKillResumeStreamContinuity is the subsystem's acceptance test:
// serve part of a stream, snapshot, throw the server away, restore a
// new one from the state file, serve the rest — the concatenation
// must be bitwise identical to one uninterrupted run at the same
// seed. The requests are whole chunkWords multiples so the
// interrupted and uninterrupted runs issue the identical sequence of
// pool Fill calls (the kill lands at a request boundary, exactly
// what randd's drain-then-snapshot shutdown guarantees).
func TestKillResumeStreamContinuity(t *testing.T) {
	const (
		wordsBefore = chunkWords     // served before the "crash"
		wordsAfter  = 2 * chunkWords // served after the restore
	)
	for _, tc := range []struct {
		name    string
		tripped []int // shards to fault before any traffic
	}{
		{name: "all-healthy"},
		{name: "tripped-shard", tripped: []int{2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			statePath := filepath.Join(t.TempDir(), "randd.state")

			// First life: serve wordsBefore, snapshot, die.
			poolA, err := hybridprng.NewPool(resumeOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range tc.tripped {
				if err := poolA.InjectFault(i); err != nil {
					t.Fatal(err)
				}
			}
			srvA, err := New(poolA, Options{StatePath: statePath})
			if err != nil {
				t.Fatal(err)
			}
			htA := httptest.NewServer(srvA.Handler())
			before := getStream(t, htA.URL, wordsBefore)
			postSnapshot(t, htA.URL)
			htA.Close()

			// Second life: a fresh pool restored from the file.
			blob, err := os.ReadFile(statePath)
			if err != nil {
				t.Fatal(err)
			}
			poolB := new(hybridprng.Pool)
			if err := poolB.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			if got := len(tc.tripped); poolB.Stats().Shards-poolB.Stats().Healthy != got {
				t.Fatalf("restored pool lost its %d tripped shards", got)
			}
			srvB, err := New(poolB, Options{StatePath: statePath})
			if err != nil {
				t.Fatal(err)
			}
			htB := httptest.NewServer(srvB.Handler())
			defer htB.Close()
			after := getStream(t, htB.URL, wordsAfter)

			// Control: the same seed served without interruption.
			poolC, err := hybridprng.NewPool(resumeOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range tc.tripped {
				if err := poolC.InjectFault(i); err != nil {
					t.Fatal(err)
				}
			}
			srvC, err := New(poolC, Options{})
			if err != nil {
				t.Fatal(err)
			}
			htC := httptest.NewServer(srvC.Handler())
			defer htC.Close()
			uninterrupted := getStream(t, htC.URL, wordsBefore+wordsAfter)

			resumed := append(append([]byte(nil), before...), after...)
			if !bytes.Equal(resumed, uninterrupted) {
				i := 0
				for i < len(resumed) && resumed[i] == uninterrupted[i] {
					i++
				}
				t.Fatalf("resumed stream diverges from uninterrupted run at byte %d of %d", i, len(resumed))
			}
		})
	}
}

// TestSnapshotEndpoint covers the admin surface: method gating, the
// disabled configuration, the JSON receipt and the metrics counters.
func TestSnapshotEndpoint(t *testing.T) {
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(5), hybridprng.WithShards(2), hybridprng.WithShardBuffer(16))
	if err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(t.TempDir(), "state.bin")
	srv, err := New(pool, Options{StatePath: statePath})
	if err != nil {
		t.Fatal(err)
	}
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()

	// GET is rejected: snapshots mutate durable state.
	resp, err := http.Get(ht.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /snapshot status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ht.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var receipt struct {
		Path    string `json:"path"`
		Bytes   int    `json:"bytes"`
		Shards  int    `json:"shards"`
		Ordinal int64  `json:"ordinal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&receipt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if receipt.Path != statePath || receipt.Shards != 2 || receipt.Ordinal != 1 || receipt.Bytes == 0 {
		t.Fatalf("bad snapshot receipt: %+v", receipt)
	}
	fi, err := os.Stat(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if int(fi.Size()) != receipt.Bytes {
		t.Fatalf("state file %d bytes, receipt says %d", fi.Size(), receipt.Bytes)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(statePath))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	// The metrics surface the snapshot count and a finite age.
	resp, err = http.Get(ht.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var metrics map[string]any
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if got, ok := metrics["snapshots"].(float64); !ok || got != 1 {
		t.Errorf("metrics snapshots = %v, want 1", metrics["snapshots"])
	}
	age, ok := metrics["snapshot_age_seconds"].(float64)
	if !ok || age < 0 || age > 300 {
		t.Errorf("metrics snapshot_age_seconds = %v, want a small non-negative age", metrics["snapshot_age_seconds"])
	}
}

// TestSnapshotDisabled checks the endpoint reports a clean error
// when no state path is configured.
func TestSnapshotDisabled(t *testing.T) {
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(5), hybridprng.WithShards(1), hybridprng.WithShardBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()
	resp, err := http.Post(ht.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disabled /snapshot status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "disabled") {
		t.Errorf("disabled /snapshot body %q does not say why", body)
	}
	// A "never snapshotted" server reports age -1.
	resp, err = http.Get(ht.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var metrics map[string]any
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatal(err)
	}
	if got, ok := metrics["snapshot_age_seconds"].(float64); !ok || got != -1 {
		t.Errorf("snapshot_age_seconds = %v, want -1 before any snapshot", metrics["snapshot_age_seconds"])
	}
}
