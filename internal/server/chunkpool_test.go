package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	hybridprng "repro"
)

// TestServeBytesReusedBufferNoLeak pins the buffer-reuse contract of
// the zero-alloc /bytes path: a short response served from a recycled
// chunk must be exactly the next bytes of the pool stream, never a
// prefix of whatever the previous (much larger) response left in the
// buffer. Single-shard pools make the stream comparable: on one shard
// Fill(a) followed by Fill(b) is the same word sequence as Fill(a+b).
func TestServeBytesReusedBufferNoLeak(t *testing.T) {
	_, ts := newTestServer(t,
		hybridprng.WithSeed(42), hybridprng.WithShards(1))

	ref, err := hybridprng.NewPool(
		hybridprng.WithSeed(42), hybridprng.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	const big = chunkWords * 8 // one full chunk fills the scratch buffer
	const small = 16
	want := make([]byte, big+small)
	if err := ref.FillBytes(want); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, fmt.Sprintf("%s/bytes?n=%d", ts.URL, big))
	if code != http.StatusOK {
		t.Fatalf("big request: status %d", code)
	}
	if !bytes.Equal(body, want[:big]) {
		t.Fatalf("big response diverges from the reference stream")
	}
	code, body = get(t, fmt.Sprintf("%s/bytes?n=%d", ts.URL, small))
	if code != http.StatusOK {
		t.Fatalf("small request: status %d", code)
	}
	if !bytes.Equal(body, want[big:]) {
		t.Fatalf("short response from a reused buffer is not the next stream bytes:\n got %x\nwant %x",
			body, want[big:])
	}
	// And a tripped pool must answer 503 with an error body — never
	// stale randomness out of the recycled buffer.
	pool2, ts2 := newTestServer(t,
		hybridprng.WithSeed(42), hybridprng.WithShards(1),
		hybridprng.WithHealthMonitoring(4))
	if code, _ := get(t, ts2.URL+"/bytes?n=65536"); code != http.StatusOK {
		t.Fatalf("warm-up request failed: %d", code)
	}
	if err := pool2.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, ts2.URL+"/bytes?n=64")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("tripped pool: status %d, want 503", code)
	}
	if len(body) >= 64 {
		t.Fatalf("tripped pool leaked a %d-byte body: %x", len(body), body)
	}
}

// discardResponse is a ResponseWriter that throws the body away; it
// lets the alloc tests call the handler directly without the
// recorder's growing body buffer polluting the measurement.
type discardResponse struct{ h http.Header }

func (d *discardResponse) Header() http.Header         { return d.h }
func (d *discardResponse) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardResponse) WriteHeader(int)             {}

// TestServeBytesSteadyPathAllocs asserts the per-chunk serving path
// allocates nothing: a 33-chunk response must cost the same number of
// allocations as a 1-chunk response (the shared per-request envelope —
// query parsing, header strings). A small slack absorbs the rare
// sync.Pool refill after a GC between runs.
func TestServeBytesSteadyPathAllocs(t *testing.T) {
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(7), hybridprng.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := &discardResponse{h: make(http.Header)}
	measure := func(nbytes int) float64 {
		target := fmt.Sprintf("/bytes?n=%d", nbytes)
		return testing.AllocsPerRun(20, func() {
			r := httptest.NewRequest(http.MethodGet, target, nil)
			srv.serveBytes(w, r)
		})
	}
	measure(chunkWords * 8) // prime the chunk pool
	one := measure(chunkWords * 8)
	many := measure(33 * chunkWords * 8)
	if many-one > 4 {
		t.Fatalf("per-chunk allocations on the steady /bytes path: 1 chunk = %.1f allocs, 33 chunks = %.1f", one, many)
	}
}

// BenchmarkServeBytesDirect measures the handler without HTTP
// transport: 16 chunks (1 MiB) per request, so per-request envelope
// costs amortise and the reported allocs/op track the per-chunk path.
func BenchmarkServeBytesDirect(b *testing.B) {
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(7), hybridprng.WithShards(8))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(pool, Options{})
	if err != nil {
		b.Fatal(err)
	}
	const nbytes = 16 * chunkWords * 8
	w := &discardResponse{h: make(http.Header)}
	target := fmt.Sprintf("/bytes?n=%d", nbytes)
	b.SetBytes(nbytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodGet, target, nil)
		srv.serveBytes(w, r)
	}
}
