package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	hybridprng "repro"
)

// TestDrawResponseHeaders: every draw endpoint must carry the
// client-cooperation headers — explicit Content-Type, the ETag-style
// stream token, and (for single-chunk /u64 and all of /bytes) an
// exact Content-Length — so SDKs can react without a second request.
func TestDrawResponseHeaders(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/bytes?n=1024")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("/bytes Content-Type = %q", ct)
	}
	if cl := resp.Header.Get("Content-Length"); cl != "1024" {
		t.Errorf("/bytes Content-Length = %q, want 1024", cl)
	}
	epoch := resp.Header.Get("X-Randd-Epoch")
	if len(epoch) != 16 {
		t.Errorf("/bytes X-Randd-Epoch = %q, want 16 hex chars", epoch)
	}
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`+epoch+"-") || !strings.HasSuffix(etag, `"`) {
		t.Errorf("ETag %q does not carry the epoch token %q", etag, epoch)
	}
	if d := resp.Header.Get("X-Pool-Degraded"); d != "" {
		t.Errorf("healthy pool stamped X-Pool-Degraded=%q", d)
	}

	// Single-chunk /u64 is fully buffered: exact Content-Length.
	resp2, err := http.Get(ts.URL + "/u64?n=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/u64 Content-Type = %q", ct)
	}
	cl, err := strconv.Atoi(resp2.Header.Get("Content-Length"))
	if err != nil {
		t.Fatalf("/u64 Content-Length %q: %v", resp2.Header.Get("Content-Length"), err)
	}
	body := make([]byte, cl+1)
	n, _ := io.ReadFull(resp2.Body, body)
	if n != cl {
		t.Errorf("/u64 body %d bytes, Content-Length %d", n, cl)
	}
	if lines := strings.Count(string(body[:n]), "\n"); lines != 100 {
		t.Errorf("/u64 body has %d lines, want 100", lines)
	}
	if e2 := resp2.Header.Get("X-Randd-Epoch"); e2 != epoch {
		t.Errorf("epoch differs across endpoints: %q vs %q", e2, epoch)
	}

	// The stream-token offset only ever grows: randomness is never
	// replayed, and the token lets a client verify that.
	off1 := etagOffset(t, etag)
	resp3, err := http.Get(ts.URL + "/bytes?n=8")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if off2 := etagOffset(t, resp3.Header.Get("ETag")); off2 <= off1 {
		t.Errorf("stream token offset did not grow: %d then %d", off1, off2)
	}
}

func etagOffset(t *testing.T, etag string) int64 {
	t.Helper()
	trimmed := strings.Trim(etag, `"`)
	i := strings.LastIndexByte(trimmed, '-')
	if i < 0 {
		t.Fatalf("malformed stream token %q", etag)
	}
	off, err := strconv.ParseInt(trimmed[i+1:], 10, 64)
	if err != nil {
		t.Fatalf("malformed stream token %q: %v", etag, err)
	}
	return off
}

// TestDegradedHeader: once a shard trips, draw responses must warn
// cooperating clients via X-Pool-Degraded while the pool still
// serves.
func TestDegradedHeader(t *testing.T) {
	pool, ts := newTestServer(t)
	if err := pool.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/bytes?n=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded pool /bytes status %d", resp.StatusCode)
	}
	if d := resp.Header.Get("X-Pool-Degraded"); d != "true" {
		t.Errorf("X-Pool-Degraded = %q, want \"true\"", d)
	}
}

// TestServeU64LargeStillStreams: requests past the single-chunk
// buffering threshold keep the old chunked path and stay correct.
func TestServeU64LargeStillStreams(t *testing.T) {
	_, ts := newTestServer(t)
	want := chunkWords + 17
	code, body := get(t, ts.URL+fmt.Sprintf("/u64?n=%d", want))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	lines := 0
	for sc.Scan() {
		if _, err := strconv.ParseUint(sc.Text(), 10, 64); err != nil {
			t.Fatalf("line %d %q: %v", lines, sc.Text(), err)
		}
		lines++
	}
	if lines != want {
		t.Fatalf("got %d lines, want %d", lines, want)
	}
}

// TestStreamWriteDeadline: a /stream client that connects and then
// never reads must be disconnected once a chunk write stalls past
// StreamWriteTimeout, releasing its in-flight slot (observable via
// the timeouts counter).
func TestStreamWriteDeadline(t *testing.T) {
	pool, err := hybridprng.NewPool(
		hybridprng.WithSeed(1),
		hybridprng.WithShards(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{StreamWriteTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A raw request we never read the response of: the server keeps
	// writing until the TCP buffers fill, then the chunk write blocks
	// and the deadline fires.
	fmt.Fprintf(conn, "GET /stream HTTP/1.1\r\nHost: test\r\n\r\n")

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.timeouts.Value() > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("stalled /stream client never hit the write deadline (timeouts=%d)", srv.timeouts.Value())
}
