// Package server is randd's HTTP layer: it exposes a hybridprng.Pool
// as a streaming randomness service. The endpoints are deliberately
// boring HTTP so any client (curl, a load balancer's health prober,
// a metrics scraper) can consume them:
//
//	GET  /u64?n=N    N decimal uint64s, one per line (default 1)
//	GET  /bytes?n=N  N random octets, application/octet-stream
//	GET  /stream     endless little-endian uint64 stream until the
//	                 client hangs up (or ?words=N words)
//	GET  /v1/stream/{key}/u64?n=N    the tenant key's own stream,
//	                 decimal uint64s (requires Options.Substreams)
//	GET  /v1/stream/{key}/bytes?n=N  the tenant key's own stream,
//	                 random octets (requires Options.Substreams)
//	GET  /healthz    200 "ok" while every shard is healthy; 200
//	                 "degraded" while some shards are recovering but
//	                 the pool still serves; 503 "unhealthy" when no
//	                 shard is serving
//	GET  /metrics    JSON metrics via expvar (draws, refills, shard
//	                 occupancy, health trips, request counters,
//	                 snapshot count/age, panics, sheds, timeouts)
//	POST /snapshot   checkpoint the pool to the configured state
//	                 file (write-temp-then-rename); JSON receipt
//	POST /drain      stream-preserving handoff: stop admitting draws,
//	                 wait out in-flight ones, answer with the pool's
//	                 full state blob (Pool.MarshalBinary). The node
//	                 refuses draws permanently afterwards — serving
//	                 even one more word would fork the streams the
//	                 successor resumes. 409 if already draining.
//	POST /undrain    roll back a committed drain whose blob never
//	                 reached a successor (the orchestrator's relay
//	                 failed and the drain ticket was aborted): draws
//	                 are admitted again. Orchestrator-only — calling
//	                 it after the blob was handed over forks streams.
//
// All draw endpoints pull through the pool's batched Fill path, so
// one HTTP request amortises shard locks over thousands of words.
//
// # Response headers for cooperating clients
//
// Draw responses carry enough metadata that an SDK (package client)
// can react without a second round trip. /bytes always sets
// Content-Type and Content-Length; /u64 does too when the request
// fits one chunk (n ≤ 8192 — the common SDK case; larger responses
// stream chunked). X-Pool-Degraded: true is stamped whenever /healthz
// would answer "degraded" (some shards down, pool still serving), so
// a client can start preferring healthier endpoints before anything
// fails. Every draw response also carries an ETag-style stream token,
//
//	ETag: "<epoch>-<words-served>"    (also X-Randd-Epoch: <epoch>)
//
// where epoch is a random per-boot identifier (stable across one
// process lifetime, different after any restart) and words-served is
// the monotone count of words this instance has served. The token is
// a resume validator in the ETag sense: a client that reconnects and
// sees the same epoch knows it is talking to the same pool instance
// and its streams continued exactly (the offset only ever grows —
// randomness is never replayed); a changed epoch means a restart, so
// any client-side assumptions tied to the old instance are void.
//
// # Overload protection
//
// Every handler runs behind a middleware chain. Panic recovery turns
// a handler panic into a 500 and a counter instead of a dead daemon.
// The draw endpoints (/u64, /bytes, /stream) sit behind a bounded
// in-flight limit: past Options.MaxInFlight concurrent draws the
// server sheds immediately with 429 and a Retry-After header rather
// than queueing without bound — a randomness service under overload
// should fail fast so the load balancer retries elsewhere. The
// probe and admin endpoints bypass the limiter: an overloaded server
// must still answer /healthz. /u64 and /bytes additionally carry a
// per-request deadline (Options.RequestTimeout); a request that
// cannot finish in time is truncated (or 503'd when nothing has been
// written) instead of holding its connection indefinitely. /stream
// is exempt from the request deadline — it is unbounded by design —
// but each chunk write carries an idle-write deadline
// (Options.StreamWriteTimeout): a client that stops reading loses
// the connection instead of pinning an in-flight slot forever.
//
// # Exact resume
//
// With Options.StatePath set, Snapshot serialises the pool's full
// state (hybridprng.Pool.MarshalBinary) to disk atomically. A new
// Server over a pool restored from that file continues every shard's
// stream exactly where the snapshot left it, so the concatenation of
// the words served before the snapshot and after the restore is
// bitwise identical to an uninterrupted run — provided the snapshot
// was taken at a request boundary (randd drains in-flight requests
// before its shutdown snapshot). Words a client abandoned mid-request
// were already consumed from the shard walkers and are discarded, not
// replayed: the stream never repeats output, which is the only safe
// failure mode for a randomness service.
package server

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	hybridprng "repro"
	"repro/internal/substream"
	"repro/internal/wordbytes"
)

// DefaultMaxWords caps /u64 and /bytes request sizes (in 64-bit
// words) so a single request cannot hold a connection forever —
// clients wanting more use /stream.
const DefaultMaxWords = 1 << 24

// DefaultMaxInFlight bounds concurrent draw requests before the
// server sheds with 429.
const DefaultMaxInFlight = 256

// DefaultRequestTimeout is the per-request deadline on /u64 and
// /bytes: generous against the word cap, but finite.
const DefaultRequestTimeout = 30 * time.Second

// DefaultStreamWriteTimeout is the per-chunk write deadline on
// /stream: a client that stops reading for this long loses its
// connection instead of pinning an in-flight slot forever.
const DefaultStreamWriteTimeout = time.Minute

// DefaultDrainWait bounds how long POST /drain waits for in-flight
// draws to finish before giving up and returning the node to service.
const DefaultDrainWait = 10 * time.Second

// chunkWords is the scratch-buffer size the handlers fill per
// iteration: big enough to amortise pool and syscall overhead, small
// enough to stay cache-resident.
const chunkWords = 8192

// chunk is the per-request scratch a draw handler borrows from
// chunkPool. On little-endian hosts words and bytes alias the same
// word-aligned block, so the pool's batched refill writes response
// bytes in place and the handlers never copy; elsewhere bytes is a
// separate block and encode materialises the words into it. text is
// the decimal formatting buffer /u64 reuses.
//
// Chunks are reused across requests, so a handler must only ever
// write bytes the pool filled *this* request — short responses take
// a prefix of freshly filled data, never of leftover buffer.
type chunk struct {
	words   []uint64
	bytes   []byte
	aliased bool
	text    []byte
}

var chunkPool = sync.Pool{New: func() any {
	c := &chunk{words: make([]uint64, chunkWords)}
	if b := wordbytes.Bytes(c.words); b != nil {
		c.bytes, c.aliased = b, true
	} else {
		c.bytes = make([]byte, chunkWords*8)
	}
	c.text = make([]byte, 0, chunkWords*21)
	return c
}}

// encode materialises words[:n] into the byte view where the two
// buffers do not alias; on little-endian hosts it is a no-op.
func (c *chunk) encode(n int) {
	if c.aliased {
		return
	}
	for i, v := range c.words[:n] {
		binary.LittleEndian.PutUint64(c.bytes[8*i:], v)
	}
}

// Server serves a Pool over HTTP. Create with New; the zero value is
// not usable.
type Server struct {
	pool        *hybridprng.Pool
	sub         *substream.Registry // nil: per-tenant routes disabled
	maxWords    uint64
	statePath   string
	mux         *http.ServeMux
	maxInFlight int64
	reqTimeout  time.Duration
	streamWrite time.Duration
	epoch       string // per-boot stream-token identifier
	inFlight    atomic.Int64
	drainWait   time.Duration
	draining    atomic.Bool // once true, draw endpoints refuse forever

	metrics  *expvar.Map
	requests *expvar.Int
	reqErrs  *expvar.Int
	words    *expvar.Int
	panics   *expvar.Int
	sheds    *expvar.Int
	timeouts *expvar.Int

	// Snapshot bookkeeping: snapMu serialises writers (a concurrent
	// POST /snapshot and a shutdown snapshot must not interleave the
	// temp-file dance), the counters feed /metrics.
	snapMu       sync.Mutex
	snapshots    *expvar.Int
	lastSnapUnix atomic.Int64 // unix milliseconds; 0 = never
}

// Options tunes a Server.
type Options struct {
	// MaxWords caps the per-request size of /u64 and /bytes in
	// words; 0 means DefaultMaxWords.
	MaxWords uint64
	// StatePath, when non-empty, enables checkpointing: POST
	// /snapshot (and the Snapshot method) atomically write the
	// pool's state there. Empty disables the endpoint.
	StatePath string
	// MaxInFlight bounds concurrent draw requests; excess requests
	// are shed with 429 + Retry-After. 0 means DefaultMaxInFlight;
	// negative disables shedding.
	MaxInFlight int
	// RequestTimeout is the per-request deadline on /u64 and /bytes.
	// 0 means DefaultRequestTimeout; negative disables deadlines.
	RequestTimeout time.Duration
	// StreamWriteTimeout is the idle-write deadline applied to each
	// /stream chunk: a stalled client that stops reading is
	// disconnected once a single write blocks this long, freeing its
	// in-flight slot. 0 means DefaultStreamWriteTimeout; negative
	// disables the deadline.
	StreamWriteTimeout time.Duration
	// DrainWait bounds how long POST /drain waits for in-flight draws
	// before aborting and returning the node to service. 0 means
	// DefaultDrainWait.
	DrainWait time.Duration
	// Substreams, when non-nil, enables the per-tenant routes
	// (/v1/stream/{key}/u64 and /bytes): each key draws from its own
	// derived walker stream, rate-limited and metered per tenant, and
	// the registry state rides along in snapshots and drain blobs so
	// tenant streams survive restarts and handoffs. Nil (the default)
	// leaves the routes unregistered and the state blob format
	// unchanged.
	Substreams *substream.Registry
}

// New builds a Server over pool.
func New(pool *hybridprng.Pool, opts Options) (*Server, error) {
	if pool == nil {
		return nil, fmt.Errorf("server: nil pool")
	}
	maxWords := opts.MaxWords
	if maxWords == 0 {
		maxWords = DefaultMaxWords
	}
	maxInFlight := int64(opts.MaxInFlight)
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	reqTimeout := opts.RequestTimeout
	if reqTimeout == 0 {
		reqTimeout = DefaultRequestTimeout
	}
	streamWrite := opts.StreamWriteTimeout
	if streamWrite == 0 {
		streamWrite = DefaultStreamWriteTimeout
	}
	drainWait := opts.DrainWait
	if drainWait <= 0 {
		drainWait = DefaultDrainWait
	}
	s := &Server{
		pool:        pool,
		sub:         opts.Substreams,
		maxWords:    maxWords,
		statePath:   opts.StatePath,
		maxInFlight: maxInFlight,
		reqTimeout:  reqTimeout,
		streamWrite: streamWrite,
		drainWait:   drainWait,
		epoch:       newEpoch(),
		requests:    new(expvar.Int),
		reqErrs:     new(expvar.Int),
		words:       new(expvar.Int),
		panics:      new(expvar.Int),
		sheds:       new(expvar.Int),
		timeouts:    new(expvar.Int),
		snapshots:   new(expvar.Int),
	}
	// The metrics map is built per-Server (not expvar.Publish'd,
	// which panics on duplicate names across test servers); cmd/randd
	// publishes it into the global registry once. Funcs snapshot the
	// pool at scrape time.
	m := new(expvar.Map).Init()
	m.Set("requests", s.requests)
	m.Set("request_errors", s.reqErrs)
	m.Set("words_served", s.words)
	m.Set("panics_recovered", s.panics)
	m.Set("requests_shed", s.sheds)
	m.Set("request_timeouts", s.timeouts)
	m.Set("in_flight", expvar.Func(func() any { return s.inFlight.Load() }))
	m.Set("snapshots", s.snapshots)
	m.Set("snapshot_age_seconds", expvar.Func(func() any {
		last := s.lastSnapUnix.Load()
		if last == 0 {
			return -1 // never snapshotted
		}
		return time.Since(time.UnixMilli(last)).Seconds() //lint:wallclock snapshot age is an operator-facing wall-clock metric
	}))
	m.Set("pool", expvar.Func(func() any { return pool.Stats() }))
	if s.sub != nil {
		m.Set("substreams", expvar.Func(func() any { return s.sub.Stats() }))
	}
	s.metrics = m

	// Draw endpoints carry the full chain; the probe and admin
	// endpoints get panic recovery only — an overloaded server must
	// still answer its health checks.
	mux := http.NewServeMux()
	mux.Handle("/u64", s.protect(s.shed(s.deadline(http.HandlerFunc(s.serveU64)))))
	mux.Handle("/bytes", s.protect(s.shed(s.deadline(http.HandlerFunc(s.serveBytes)))))
	mux.Handle("/stream", s.protect(s.shed(http.HandlerFunc(s.serveStream))))
	mux.Handle("/healthz", s.protect(http.HandlerFunc(s.serveHealthz)))
	mux.Handle("/metrics", s.protect(http.HandlerFunc(s.serveMetrics)))
	mux.Handle("/snapshot", s.protect(http.HandlerFunc(s.serveSnapshot)))
	mux.Handle("/drain", s.protect(http.HandlerFunc(s.serveDrain)))
	mux.Handle("/undrain", s.protect(http.HandlerFunc(s.serveUndrain)))
	if s.sub != nil {
		mux.Handle("/v1/stream/{key}/u64", s.protect(s.shed(s.deadline(http.HandlerFunc(s.serveSubU64)))))
		mux.Handle("/v1/stream/{key}/bytes", s.protect(s.shed(s.deadline(http.HandlerFunc(s.serveSubBytes)))))
	}
	s.mux = mux
	return s, nil
}

// protect converts a handler panic into a 500 response and a counter
// instead of a torn-down connection (or, outside net/http's own
// recovery, a dead process). The response is best-effort: when the
// panic fires mid-body the client sees a truncated stream, which is
// the only honest signal at that point.
func (s *Server) protect(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				s.reqErrs.Add(1)
				http.Error(w, fmt.Sprintf("internal error: %v", v), http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// shed rejects draw requests beyond the in-flight bound with 429 and
// a Retry-After hint. Failing fast beats queueing without bound: the
// caller's load balancer can retry a sibling immediately, and the
// requests already in flight keep their full share of the pool.
//
// Admission order is load-bearing for drain correctness: the
// in-flight count is taken BEFORE the draining check, and serveDrain
// reads the count only AFTER flipping draining on — so every draw is
// either visible to the drain's quiescence wait or observes draining
// and refuses. (Checking draining first would leave a window where a
// draw admitted pre-flip has not yet incremented the count, the wait
// sees zero, and the node serves words after its state blob went to a
// successor — forking the resumed streams.) The count is maintained
// even with shedding disabled (MaxInFlight < 0) because the drain
// wait depends on it.
func (s *Server) shed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		if s.draining.Load() {
			s.requests.Add(1)
			s.fail(w, http.StatusServiceUnavailable, "draining: this node's streams moved to a successor")
			return
		}
		if s.maxInFlight > 0 && n > s.maxInFlight {
			s.sheds.Add(1)
			s.requests.Add(1)
			s.reqErrs.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at capacity", http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// deadline attaches the per-request timeout to the request context;
// the bounded handlers check it between chunks.
func (s *Server) deadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.reqTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// expired reports (and accounts for) a request whose deadline or
// client connection lapsed mid-generation.
func (s *Server) expired(w http.ResponseWriter, ctx context.Context, wrote bool) bool {
	err := ctx.Err()
	if err == nil {
		return false
	}
	if err == context.DeadlineExceeded {
		s.timeouts.Add(1)
	}
	if wrote {
		s.reqErrs.Add(1) // truncated body: the only honest option mid-stream
	} else {
		s.fail(w, http.StatusServiceUnavailable, "request deadline exceeded")
	}
	return true
}

// Snapshot checkpoints the pool to the configured StatePath: the
// blob is written to a temp file in the same directory and renamed
// into place, so a crash mid-write can never leave a torn state file
// behind. It returns the blob size.
func (s *Server) Snapshot() (int, error) {
	if s.statePath == "" {
		return 0, fmt.Errorf("server: snapshotting disabled (no state path configured)")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	blob, err := s.nodeState()
	if err != nil {
		return 0, fmt.Errorf("server: checkpoint pool: %w", err)
	}
	dir, base := filepath.Split(s.statePath)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("server: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("server: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("server: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("server: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, s.statePath); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("server: publish snapshot: %w", err)
	}
	s.snapshots.Add(1)
	s.lastSnapUnix.Store(time.Now().UnixMilli()) //lint:wallclock snapshot timestamps are operator-facing wall-clock metadata
	return len(blob), nil
}

// serveSnapshot is the admin endpoint behind Snapshot. POST only —
// it mutates durable state.
func (s *Server) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	n, err := s.Snapshot()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(struct {
		Path    string `json:"path"`
		Bytes   int    `json:"bytes"`
		Shards  int    `json:"shards"`
		UnixMs  int64  `json:"unix_ms"`
		Ordinal int64  `json:"ordinal"`
	}{s.statePath, n, s.pool.Shards(), s.lastSnapUnix.Load(), s.snapshots.Value()})
}

// serveDrain performs the node-side half of a stream-preserving
// handoff. The sequencing is the whole point: draining flips first,
// so the draw endpoints start refusing; then in-flight draws get
// DrainWait to finish, which parks the pool at a request boundary;
// only then is the state blob marshalled and returned. The blob is
// therefore exactly the state a successor must resume from for the
// concatenated streams to be bitwise identical to an uninterrupted
// run. After a successful drain this node never serves another word —
// one more draw here would fork every stream the successor continues.
// A failed drain (in-flight draws outlasting DrainWait, or a marshal
// error) flips draining back off: a node that could not hand over
// must keep serving rather than strand its capacity.
func (s *Server) serveDrain(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !s.draining.CompareAndSwap(false, true) {
		s.fail(w, http.StatusConflict, "drain already in progress or complete")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.drainWait)
	defer cancel()
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for s.inFlight.Load() > 0 {
		select {
		case <-ctx.Done():
			s.draining.Store(false)
			s.fail(w, http.StatusServiceUnavailable,
				fmt.Sprintf("drain aborted: %d draws still in flight after %v", s.inFlight.Load(), s.drainWait))
			return
		case <-t.C:
		}
	}
	// The pool is quiescent: no draw can start (draining) and none is
	// running (inFlight == 0). Snapshot-writers are serialised too so
	// a concurrent POST /snapshot cannot observe a half-read state.
	s.snapMu.Lock()
	blob, err := s.nodeState()
	s.snapMu.Unlock()
	if err != nil {
		s.draining.Store(false)
		s.fail(w, http.StatusInternalServerError, fmt.Sprintf("drain: checkpoint pool: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.Header().Set("X-Randd-Epoch", s.epoch)
	w.Write(blob)
}

// serveUndrain rolls back a committed drain, re-admitting draws. It
// exists for exactly one caller: the drain orchestrator whose relay
// of the drain blob failed after this node had already latched
// draining (e.g. the body read broke mid-transfer). In that case the
// blob never reached a successor and the controller aborted the drain
// ticket, so the latch is all that remains of the failed drain —
// without this endpoint the node would 503 every draw forever while
// the controller keeps routing clients at it. It must never be called
// once the blob was handed to a successor: that successor continues
// the streams, and this node serving even one more word would fork
// them. Idempotent; the receipt says whether a latch was cleared.
func (s *Server) serveUndrain(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	was := s.draining.Swap(false)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(struct {
		Draining    bool `json:"draining"`
		WasDraining bool `json:"was_draining"`
	}{false, was})
}

// Draining reports whether the server has drained (or is draining):
// randd's shutdown path skips the exit snapshot for a drained node,
// whose state now lives with its successor.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// MetricsVar returns the server's metrics map for callers that want
// to expvar.Publish it into the process-global registry.
func (s *Server) MetricsVar() expvar.Var { return s.metrics }

// countWords parses the ?n= word/byte count with a default of 1 and
// the server's cap.
func (s *Server) countWords(w http.ResponseWriter, r *http.Request, param string, cap uint64) (uint64, bool) {
	q := r.URL.Query().Get(param)
	if q == "" {
		return 1, true
	}
	n, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("bad %s=%q: %v", param, q, err))
		return 0, false
	}
	if n > cap {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("%s=%d exceeds cap %d", param, n, cap))
		return 0, false
	}
	return n, true
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.reqErrs.Add(1)
	http.Error(w, msg, code)
}

// newEpoch draws the per-boot stream-token identifier. It is
// deliberately not taken from the pool (that would consume words and
// perturb exact-resume continuity) and needs no determinism — it only
// has to differ between process lifetimes.
func newEpoch() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano())) //lint:wallclock last-resort epoch nonce when crypto/rand fails; uniqueness, not determinism, is the goal
	}
	return hex.EncodeToString(b[:])
}

// setDrawHeaders stamps the client-cooperation headers on a draw
// response: the ETag-style stream token (epoch + words served so far)
// and the degraded hint mirroring what /healthz would say right now.
// Must be called before the first body write.
func (s *Server) setDrawHeaders(w http.ResponseWriter) {
	h := w.Header()
	h.Set("X-Randd-Epoch", s.epoch)
	h.Set("ETag", `"`+s.epoch+"-"+strconv.FormatInt(s.words.Value(), 10)+`"`)
	if healthy, total := s.pool.Health(); healthy > 0 && healthy < total {
		h.Set("X-Pool-Degraded", "true")
	}
}

// serveU64 streams n decimal uint64s, one per line. Single-chunk
// requests (n ≤ chunkWords, the common SDK case) are fully buffered
// so the response carries an exact Content-Length; larger requests
// stream chunked as before.
func (s *Server) serveU64(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	n, ok := s.countWords(w, r, "n", s.maxWords)
	if !ok {
		return
	}
	s.setDrawHeaders(w)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ctx := r.Context()
	c := chunkPool.Get().(*chunk)
	defer chunkPool.Put(c)
	scratch := c.words
	// One reusable text buffer: 20 digits + newline per word.
	out := c.text[:0]
	if n <= chunkWords {
		if s.expired(w, ctx, false) {
			return
		}
		if err := s.pool.Fill(scratch[:n]); err != nil {
			s.unhealthy(w, err, false)
			return
		}
		for _, v := range scratch[:n] {
			out = strconv.AppendUint(out, v, 10)
			out = append(out, '\n')
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(out)))
		if _, err := w.Write(out); err != nil {
			return
		}
		s.words.Add(int64(n))
		return
	}
	wrote := false
	for n > 0 {
		if s.expired(w, ctx, wrote) {
			return
		}
		batch := n
		if batch > chunkWords {
			batch = chunkWords
		}
		if err := s.pool.Fill(scratch[:batch]); err != nil {
			s.unhealthy(w, err, wrote)
			return
		}
		out = out[:0]
		for _, v := range scratch[:batch] {
			out = strconv.AppendUint(out, v, 10)
			out = append(out, '\n')
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		wrote = true
		s.words.Add(int64(batch))
		n -= batch
	}
}

// unhealthy reports a pool failure: a clean 503 when the response
// has not started, a truncated body (the only honest option) when
// chunks are already on the wire.
func (s *Server) unhealthy(w http.ResponseWriter, err error, wrote bool) {
	if wrote {
		s.reqErrs.Add(1)
		return
	}
	s.fail(w, http.StatusServiceUnavailable, err.Error())
}

// serveBytes streams n random octets. On little-endian hosts the
// pool's batched refill fills the word-aligned response buffer in
// place (Pool.FillBytes), so the steady per-chunk path performs no
// copies and no allocations; the portable fallback fills words and
// encodes.
func (s *Server) serveBytes(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	n, ok := s.countWords(w, r, "n", s.maxWords*8)
	if !ok {
		return
	}
	s.setDrawHeaders(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatUint(n, 10))
	ctx := r.Context()
	c := chunkPool.Get().(*chunk)
	defer chunkPool.Put(c)
	wrote := false
	for n > 0 {
		if s.expired(w, ctx, wrote) {
			return
		}
		batch := n
		if batch > uint64(len(c.bytes)) {
			batch = uint64(len(c.bytes))
		}
		words := (batch + 7) / 8
		if c.aliased {
			if err := s.pool.FillBytes(c.bytes[:batch]); err != nil {
				s.unhealthy(w, err, wrote)
				return
			}
		} else {
			if err := s.pool.Fill(c.words[:words]); err != nil {
				s.unhealthy(w, err, wrote)
				return
			}
			c.encode(int(words))
		}
		if _, err := w.Write(c.bytes[:batch]); err != nil {
			return
		}
		wrote = true
		s.words.Add(int64(words))
		n -= batch
	}
}

// serveStream writes little-endian uint64s until the client goes
// away (or ?words=N words have been sent). Each chunk is flushed so
// slow consumers see bytes promptly.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	limit, ok := s.countWords(w, r, "words", 1<<62)
	if !ok {
		return
	}
	if r.URL.Query().Get("words") == "" {
		limit = 1 << 62 // effectively unbounded; the client hangs up
	}
	s.setDrawHeaders(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	ctx := r.Context()
	c := chunkPool.Get().(*chunk)
	defer chunkPool.Put(c)
	wrote := false
	for limit > 0 {
		select {
		case <-ctx.Done():
			return
		default:
		}
		batch := limit
		if batch > chunkWords {
			batch = chunkWords
		}
		if err := s.pool.Fill(c.words[:batch]); err != nil {
			s.unhealthy(w, err, wrote)
			return
		}
		c.encode(int(batch))
		// Idle-write deadline: /stream is exempt from the request
		// timeout by design, but a client that stops *reading* must
		// not pin an in-flight slot forever. The deadline is re-armed
		// per chunk, so it bounds stall time, not stream length.
		// SetWriteDeadline errors (unsupported writer, e.g. a test
		// recorder) downgrade to the old no-deadline behaviour.
		if s.streamWrite > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.streamWrite)) //lint:wallclock socket deadlines are kernel wall-clock by definition
		}
		if _, err := w.Write(c.bytes[:batch*8]); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.timeouts.Add(1)
				s.reqErrs.Add(1)
			}
			return
		}
		wrote = true
		s.words.Add(int64(batch))
		if flusher != nil {
			flusher.Flush()
		}
		limit -= batch
	}
}

// HealthBody is the machine-readable /healthz payload served for the
// degraded and unhealthy states — the shape fleet controllers and
// probers parse instead of scraping prose. The healthy state keeps
// its plain-text "ok" line: every probe on the planet understands it,
// and nothing needs per-shard detail from a fully healthy node.
type HealthBody struct {
	Status      string `json:"status"` // "degraded" | "unhealthy"
	Error       string `json:"error,omitempty"`
	Healthy     int    `json:"healthy"`
	Shards      int    `json:"shards"`
	Quarantined int    `json:"quarantined"`
	Probation   int    `json:"probation"`
	Retired     int    `json:"retired"`
	Recoveries  uint64 `json:"recoveries"`
	Epoch       string `json:"epoch"`
	Draining    bool   `json:"draining,omitempty"`
}

// serveHealthz distinguishes three states. "ok" (200, plain text):
// every shard healthy. "degraded" (200, JSON): some shards are
// quarantined, in probation or retired but the pool still serves —
// the instance stays in rotation while self-healing runs, and the
// body carries the counts and failure machine-readably. "unhealthy"
// (503, JSON): no shard is serving; the load balancer should pull the
// instance until recovery readmits a shard. A drained node also
// answers 503 — it refuses draws, so advertising health would lie to
// the balancer.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st := s.pool.Stats()
	body := HealthBody{
		Healthy:     st.Healthy,
		Shards:      st.Shards,
		Quarantined: st.Quarantined,
		Probation:   st.Probation,
		Retired:     st.Retired,
		Recoveries:  st.Recoveries,
		Epoch:       s.epoch,
		Draining:    s.draining.Load(),
	}
	if err := s.pool.HealthErr(); err != nil {
		body.Error = err.Error()
	}
	switch {
	case st.Healthy == 0 || body.Draining:
		body.Status = "unhealthy"
		if body.Error == "" && body.Draining {
			body.Error = "draining: this node's streams moved to a successor"
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(body)
	case st.Healthy < st.Shards:
		body.Status = "degraded"
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(body)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok (healthy %d/%d, quarantined %d, probation %d, retired %d, recoveries %d)\n",
			st.Healthy, st.Shards, st.Quarantined, st.Probation, st.Retired, st.Recoveries)
	}
}

// serveMetrics emits the metrics map as JSON (expvar's wire format).
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, s.metrics.String())
}
