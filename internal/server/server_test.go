package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	hybridprng "repro"
)

func newTestServer(t testing.TB, opts ...hybridprng.Option) (*hybridprng.Pool, *httptest.Server) {
	t.Helper()
	if len(opts) == 0 {
		opts = []hybridprng.Option{
			hybridprng.WithSeed(1),
			hybridprng.WithShards(4),
			hybridprng.WithHealthMonitoring(4),
		}
	}
	pool, err := hybridprng.NewPool(opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return pool, ts
}

func get(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeU64(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/u64?n=100")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	var lines int
	for sc.Scan() {
		if _, err := strconv.ParseUint(sc.Text(), 10, 64); err != nil {
			t.Fatalf("line %d %q: %v", lines, sc.Text(), err)
		}
		lines++
	}
	if lines != 100 {
		t.Fatalf("got %d lines, want 100", lines)
	}
	// Default n is 1.
	if _, body := get(t, ts.URL+"/u64"); strings.Count(string(body), "\n") != 1 {
		t.Fatalf("default /u64 body: %q", body)
	}
}

func TestServeU64Validation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{"n=abc", "n=-1", "n=99999999999999999999", "n=" + strconv.FormatUint(DefaultMaxWords+1, 10)} {
		if code, _ := get(t, ts.URL+"/u64?"+q); code != http.StatusBadRequest {
			t.Errorf("/u64?%s: status %d, want 400", q, code)
		}
	}
}

func TestServeBytes(t *testing.T) {
	_, ts := newTestServer(t)
	for _, n := range []int{1, 7, 8, 1000, 65536 + 13} {
		code, body := get(t, ts.URL+"/bytes?n="+strconv.Itoa(n))
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(body) != n {
			t.Fatalf("n=%d: got %d bytes", n, len(body))
		}
	}
}

func TestServeStreamBounded(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/stream?words=1000")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(body) != 8000 {
		t.Fatalf("got %d bytes, want 8000", len(body))
	}
	// Words must not be trivially degenerate.
	var zeros int
	for i := 0; i < 1000; i++ {
		if binary.LittleEndian.Uint64(body[8*i:]) == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("%d zero words in 1000", zeros)
	}
}

func TestServeStreamClientDisconnect(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // the handler must notice and stop; Cleanup would hang otherwise
}

func TestHealthzFlipsOnFaultInjection(t *testing.T) {
	pool, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy pool: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "4/4") {
		t.Errorf("healthz body: %q", body)
	}
	if err := pool.InjectFault(1); err != nil {
		t.Fatal(err)
	}
	// One quarantined shard: degraded but still in rotation (200),
	// body names the failure for operators.
	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("degraded pool: status %d, want 200: %s", code, body)
	}
	if !strings.Contains(string(body), "degraded") {
		t.Errorf("degraded body: %q", body)
	}
	if !strings.Contains(string(body), "health test") && !strings.Contains(string(body), "forced") {
		t.Errorf("degraded body should name the failure: %q", body)
	}
	// Draw endpoints keep working from the healthy shards.
	if code, _ := get(t, ts.URL+"/u64?n=10"); code != http.StatusOK {
		t.Errorf("degraded pool must still serve: status %d", code)
	}
	// Trip everything: probe flips to 503 and draw endpoints 503 too.
	for i := 0; i < pool.Shards(); i++ {
		if err := pool.InjectFault(i); err != nil {
			t.Fatal(err)
		}
	}
	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fully tripped pool: healthz status %d, want 503: %s", code, body)
	}
	if !strings.Contains(string(body), "unhealthy") {
		t.Errorf("unhealthy body: %q", body)
	}
	if code, _ := get(t, ts.URL+"/u64?n=10"); code != http.StatusServiceUnavailable {
		t.Errorf("fully tripped pool: /u64 status %d, want 503", code)
	}
	if code, _ := get(t, ts.URL+"/bytes?n=10"); code != http.StatusServiceUnavailable {
		t.Errorf("fully tripped pool: /bytes status %d, want 503", code)
	}
}

func TestMetrics(t *testing.T) {
	pool, ts := newTestServer(t)
	if _, err := pool.Uint64(); err != nil {
		t.Fatal(err)
	}
	get(t, ts.URL+"/u64?n=500")
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var m struct {
		Requests    int64 `json:"requests"`
		WordsServed int64 `json:"words_served"`
		RequestErrs int64 `json:"request_errors"`
		Pool        hybridprng.PoolStats
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if m.Requests < 2 {
		t.Errorf("requests = %d", m.Requests)
	}
	if m.WordsServed < 500 {
		t.Errorf("words_served = %d", m.WordsServed)
	}
	if m.Pool.Shards != 4 || m.Pool.Draws < 501 {
		t.Errorf("pool stats: %+v", m.Pool)
	}
	if len(m.Pool.PerShard) != 4 {
		t.Errorf("per-shard stats missing: %+v", m.Pool)
	}
}

// TestConcurrentRequests hits every endpoint from many goroutines —
// CI runs this under -race, which is the point.
func TestConcurrentRequests(t *testing.T) {
	pool, ts := newTestServer(t)
	paths := []string{"/u64?n=200", "/bytes?n=4096", "/stream?words=512", "/healthz", "/metrics"}
	iters := 20
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				code, _ := get(t, ts.URL+paths[(i+j)%len(paths)])
				if code != http.StatusOK && code != http.StatusServiceUnavailable {
					t.Errorf("status %d on %s", code, paths[(i+j)%len(paths)])
				}
			}
		}(i)
	}
	// Flip a shard mid-flight; no request may observe anything but
	// 200/503.
	if err := pool.InjectFault(0); err != nil {
		t.Error(err)
	}
	wg.Wait()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil pool must fail")
	}
}
