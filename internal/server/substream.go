package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/substream"
)

// Node state container, "hprng-node" v1:
//
//	magic "hprng-node" | u16 version | u32-len pool blob | u32-len registry blob
//
// A registry-less server keeps writing the raw pool blob ("hprng-pool"),
// so every existing snapshot file, drain relay and fleet drill decodes
// unchanged; the container appears only when Options.Substreams is set,
// and DecodeNodeState passes raw pool blobs through untouched — one
// decode path accepts both generations of state.
const (
	nodeMagic   = "hprng-node"
	nodeVersion = 1
)

// EncodeNodeState wraps a pool blob and a substream registry blob
// into the composite node container.
func EncodeNodeState(poolBlob, regBlob []byte) []byte {
	out := append([]byte{}, nodeMagic...)
	out = binary.LittleEndian.AppendUint16(out, nodeVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(poolBlob)))
	out = append(out, poolBlob...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(regBlob)))
	out = append(out, regBlob...)
	return out
}

// DecodeNodeState splits a node state blob into its pool and registry
// parts. A blob that does not carry the container magic is an
// old-style raw pool blob and is returned as (blob, nil, nil).
func DecodeNodeState(blob []byte) (poolBlob, regBlob []byte, err error) {
	if len(blob) < len(nodeMagic) || string(blob[:len(nodeMagic)]) != nodeMagic {
		return blob, nil, nil
	}
	p := blob[len(nodeMagic):]
	if len(p) < 2 {
		return nil, nil, fmt.Errorf("server: node state header truncated")
	}
	if v := binary.LittleEndian.Uint16(p); v != nodeVersion {
		return nil, nil, fmt.Errorf("server: unsupported node state version %d", v)
	}
	p = p[2:]
	take := func(what string) ([]byte, error) {
		if len(p) < 4 {
			return nil, fmt.Errorf("server: node state %s length truncated", what)
		}
		n := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if n > len(p) {
			return nil, fmt.Errorf("server: node state %s truncated (%d of %d bytes)", what, len(p), n)
		}
		b := p[:n]
		p = p[n:]
		return b, nil
	}
	if poolBlob, err = take("pool blob"); err != nil {
		return nil, nil, err
	}
	if regBlob, err = take("registry blob"); err != nil {
		return nil, nil, err
	}
	if len(p) != 0 {
		return nil, nil, fmt.Errorf("server: %d trailing bytes after node state", len(p))
	}
	return poolBlob, regBlob, nil
}

// nodeState marshals everything a successor needs: the raw pool blob
// when no registry is configured (the pre-substream format, kept so
// registry-less fleets interoperate), otherwise the composite
// container with the registry state alongside. Callers hold snapMu.
func (s *Server) nodeState() ([]byte, error) {
	poolBlob, err := s.pool.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if s.sub == nil {
		return poolBlob, nil
	}
	regBlob, err := s.sub.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("checkpoint substream registry: %w", err)
	}
	return EncodeNodeState(poolBlob, regBlob), nil
}

// subFail maps a registry error onto the draw-path HTTP contract:
// invalid keys are the caller's fault (400), a rate-limited tenant
// gets 429 with the bucket's own refill estimate in Retry-After
// (rounded up — retrying early just sheds again), anything else is
// the pool-failure path. Mid-body errors truncate, as everywhere.
func (s *Server) subFail(w http.ResponseWriter, err error, wrote bool) {
	if wrote {
		s.reqErrs.Add(1)
		return
	}
	var ke *substream.KeyError
	var rl *substream.RateLimitError
	switch {
	case errors.As(err, &ke):
		s.fail(w, http.StatusBadRequest, err.Error())
	case errors.As(err, &rl):
		secs := int((rl.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.sheds.Add(1)
		s.fail(w, http.StatusTooManyRequests, err.Error())
	default:
		s.fail(w, http.StatusServiceUnavailable, err.Error())
	}
}

// serveSubU64 is /v1/stream/{key}/u64: the tenant's own derived
// stream as decimal uint64s, one per line. Shape mirrors /u64 —
// single-chunk responses carry Content-Length, larger ones stream —
// but every chunk draws through the registry, so it pays the
// tenant's token bucket (chunk by chunk: a rate limit mid-response
// truncates, exactly like a lapsed deadline) and lands in the
// tenant's meters.
func (s *Server) serveSubU64(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	key := r.PathValue("key")
	n, ok := s.countWords(w, r, "n", s.maxWords)
	if !ok {
		return
	}
	s.setDrawHeaders(w)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ctx := r.Context()
	c := chunkPool.Get().(*chunk)
	defer chunkPool.Put(c)
	scratch := c.words
	out := c.text[:0]
	if n <= chunkWords {
		if s.expired(w, ctx, false) {
			return
		}
		if err := s.sub.Fill(key, scratch[:n]); err != nil {
			s.subFail(w, err, false)
			return
		}
		for _, v := range scratch[:n] {
			out = strconv.AppendUint(out, v, 10)
			out = append(out, '\n')
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(out)))
		if _, err := w.Write(out); err != nil {
			return
		}
		s.words.Add(int64(n))
		return
	}
	wrote := false
	for n > 0 {
		if s.expired(w, ctx, wrote) {
			return
		}
		batch := n
		if batch > chunkWords {
			batch = chunkWords
		}
		if err := s.sub.Fill(key, scratch[:batch]); err != nil {
			s.subFail(w, err, wrote)
			return
		}
		out = out[:0]
		for _, v := range scratch[:batch] {
			out = strconv.AppendUint(out, v, 10)
			out = append(out, '\n')
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		wrote = true
		s.words.Add(int64(batch))
		n -= batch
	}
}

// serveSubBytes is /v1/stream/{key}/bytes: the tenant's derived
// stream as octets, little-endian word by word like /bytes.
func (s *Server) serveSubBytes(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	key := r.PathValue("key")
	n, ok := s.countWords(w, r, "n", s.maxWords*8)
	if !ok {
		return
	}
	s.setDrawHeaders(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatUint(n, 10))
	ctx := r.Context()
	c := chunkPool.Get().(*chunk)
	defer chunkPool.Put(c)
	wrote := false
	for n > 0 {
		if s.expired(w, ctx, wrote) {
			return
		}
		batch := n
		if batch > uint64(len(c.bytes)) {
			batch = uint64(len(c.bytes))
		}
		if err := s.sub.FillBytes(key, c.bytes[:batch]); err != nil {
			s.subFail(w, err, wrote)
			return
		}
		if _, err := w.Write(c.bytes[:batch]); err != nil {
			return
		}
		wrote = true
		s.words.Add(int64((batch + 7) / 8))
		n -= batch
	}
}
