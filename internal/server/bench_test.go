package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	hybridprng "repro"
)

// The acceptance bar for the serving layer: ≥ 1M uint64s/s over
// loopback HTTP. The binary /bytes path clears it by >100×; even the
// decimal-text /u64 path clears it comfortably. Run with
//
//	go test -bench Serve -benchtime 2s ./internal/server
//
// and read the words/s metric.

func benchPoolServer(b *testing.B) *httptest.Server {
	b.Helper()
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(1), hybridprng.WithHealthMonitoring(4))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(pool, Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func drain(b *testing.B, client *http.Client, url string) int64 {
	b.Helper()
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkServeBytes measures the binary fast path: one request per
// iteration, 1M words (8 MB) each.
func BenchmarkServeBytes(b *testing.B) {
	ts := benchPoolServer(b)
	client := ts.Client()
	const words = 1 << 20
	url := fmt.Sprintf("%s/bytes?n=%d", ts.URL, words*8)
	b.SetBytes(words * 8)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if got := drain(b, client, url); got != words*8 {
			b.Fatalf("short body: %d", got)
		}
	}
	b.ReportMetric(float64(b.N)*words/time.Since(start).Seconds(), "words/s")
}

// BenchmarkServeU64Text measures the decimal-text path, 64k words
// per request.
func BenchmarkServeU64Text(b *testing.B) {
	ts := benchPoolServer(b)
	client := ts.Client()
	const words = 1 << 16
	url := fmt.Sprintf("%s/u64?n=%d", ts.URL, words)
	b.ResetTimer()
	start := time.Now()
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes += drain(b, client, url)
	}
	b.SetBytes(bytes / int64(b.N))
	b.ReportMetric(float64(b.N)*words/time.Since(start).Seconds(), "words/s")
}

// BenchmarkServeStream measures the chunked streaming path, 1M words
// per request.
func BenchmarkServeStream(b *testing.B) {
	ts := benchPoolServer(b)
	client := ts.Client()
	const words = 1 << 20
	url := fmt.Sprintf("%s/stream?words=%d", ts.URL, words)
	b.SetBytes(words * 8)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if got := drain(b, client, url); got != words*8 {
			b.Fatalf("short body: %d", got)
		}
	}
	b.ReportMetric(float64(b.N)*words/time.Since(start).Seconds(), "words/s")
}

// TestLoopbackThroughputFloor asserts the acceptance bar outside
// short mode (CI's -race -short build skips it: the race detector
// deliberately trades an order of magnitude of speed for soundness).
func TestLoopbackThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput floor not meaningful in -short (race) runs")
	}
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(1), hybridprng.WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const words = 4 << 20
	start := time.Now()
	resp, err := ts.Client().Get(fmt.Sprintf("%s/bytes?n=%d", ts.URL, words*8))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil || n != words*8 {
		t.Fatalf("drain: %d bytes, %v", n, err)
	}
	rate := words / time.Since(start).Seconds()
	t.Logf("loopback /bytes: %.1fM uint64/s", rate/1e6)
	if rate < 1e6 {
		t.Errorf("loopback rate %.0f words/s below the 1M/s floor", rate)
	}
}
