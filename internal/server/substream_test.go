package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	hybridprng "repro"
	"repro/internal/substream"
)

// subResumeRegistry builds the fixed-derivation registry configuration
// shared by the interrupted and uninterrupted runs of the keyed
// continuity tests.
func subResumeRegistry(t *testing.T) *substream.Registry {
	t.Helper()
	reg, err := substream.New(substream.Config{RootSeed: 20260808, MaxResident: 4})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func keyURL(base, key, kind string, n int) string {
	return base + "/v1/stream/" + url.PathEscape(key) + "/" + kind + "?n=" + strconv.Itoa(n)
}

func getKeyedBytes(t *testing.T, base, key string, n int) []byte {
	t.Helper()
	resp, err := http.Get(keyURL(base, key, "bytes", n))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed bytes status %d: %s", resp.StatusCode, body)
	}
	if len(body) != n {
		t.Fatalf("keyed bytes returned %d bytes, want %d", len(body), n)
	}
	return body
}

// TestKillResumeKeyedStreamContinuity extends the exact-resume
// acceptance bar to tenant streams: serve pool traffic AND two keyed
// streams, snapshot, restore a fresh node from the state file, keep
// serving — every stream's concatenation must be bitwise identical
// to an uninterrupted run. This is what "the registry blob
// round-trips through the snapshot machinery" means operationally.
func TestKillResumeKeyedStreamContinuity(t *testing.T) {
	const (
		poolWords = chunkWords
		keyBytes  = 4096
	)
	keys := []string{"alice", "tenant/eu-west-1"}
	statePath := filepath.Join(t.TempDir(), "randd.state")

	// First life: interleaved pool and keyed traffic, snapshot, die.
	poolA, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srvA, err := New(poolA, Options{StatePath: statePath, Substreams: subResumeRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	htA := httptest.NewServer(srvA.Handler())
	beforePool := getStream(t, htA.URL, poolWords)
	before := map[string][]byte{}
	for _, k := range keys {
		before[k] = getKeyedBytes(t, htA.URL, k, keyBytes)
	}
	postSnapshot(t, htA.URL)
	htA.Close()

	// Second life: pool and registry restored from the container.
	blob, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	poolBlob, regBlob, err := DecodeNodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if regBlob == nil {
		t.Fatal("snapshot of a substream-enabled server did not carry a registry blob")
	}
	poolB := new(hybridprng.Pool)
	if err := poolB.UnmarshalBinary(poolBlob); err != nil {
		t.Fatal(err)
	}
	regB, err := substream.Restore(regBlob, substream.Config{MaxResident: 4})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := New(poolB, Options{Substreams: regB})
	if err != nil {
		t.Fatal(err)
	}
	htB := httptest.NewServer(srvB.Handler())
	defer htB.Close()
	afterPool := getStream(t, htB.URL, poolWords)
	after := map[string][]byte{}
	for _, k := range keys {
		after[k] = getKeyedBytes(t, htB.URL, k, keyBytes)
	}

	// Control: one uninterrupted node at the same seeds.
	poolC, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srvC, err := New(poolC, Options{Substreams: subResumeRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	htC := httptest.NewServer(srvC.Handler())
	defer htC.Close()
	wantPool := getStream(t, htC.URL, 2*poolWords)
	if got := append(append([]byte(nil), beforePool...), afterPool...); !bytes.Equal(got, wantPool) {
		t.Fatal("pool stream diverged across the keyed-state snapshot")
	}
	for _, k := range keys {
		want := getKeyedBytes(t, htC.URL, k, 2*keyBytes)
		got := append(append([]byte(nil), before[k]...), after[k]...)
		if !bytes.Equal(got, want) {
			i := 0
			for i < len(got) && got[i] == want[i] {
				i++
			}
			t.Fatalf("tenant %q stream diverges from uninterrupted run at byte %d", k, i)
		}
	}
}

// TestDrainHandsOverKeyedState is the controller-drain half of the
// keyed continuity bar: POST /drain on a substream-enabled node
// answers with the composite container, a successor built from it
// resumes a named tenant's stream bitwise, and the drained node
// refuses further keyed draws.
func TestDrainHandsOverKeyedState(t *testing.T) {
	const keyBytes = 2048
	poolA, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srvA, err := New(poolA, Options{Substreams: subResumeRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	htA := httptest.NewServer(srvA.Handler())
	defer htA.Close()
	before := getKeyedBytes(t, htA.URL, "drill-tenant", keyBytes)

	resp, err := http.Post(htA.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d, err %v", resp.StatusCode, err)
	}

	// The drained node refuses keyed draws like everything else.
	refuse, err := http.Get(keyURL(htA.URL, "drill-tenant", "bytes", 8))
	if err != nil {
		t.Fatal(err)
	}
	refuse.Body.Close()
	if refuse.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained keyed draw status %d, want 503", refuse.StatusCode)
	}

	poolBlob, regBlob, err := DecodeNodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	poolB := new(hybridprng.Pool)
	if err := poolB.UnmarshalBinary(poolBlob); err != nil {
		t.Fatal(err)
	}
	regB, err := substream.Restore(regBlob, substream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := New(poolB, Options{Substreams: regB})
	if err != nil {
		t.Fatal(err)
	}
	htB := httptest.NewServer(srvB.Handler())
	defer htB.Close()
	after := getKeyedBytes(t, htB.URL, "drill-tenant", keyBytes)

	poolC, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srvC, err := New(poolC, Options{Substreams: subResumeRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	htC := httptest.NewServer(srvC.Handler())
	defer htC.Close()
	want := getKeyedBytes(t, htC.URL, "drill-tenant", 2*keyBytes)
	got := append(append([]byte(nil), before...), after...)
	if !bytes.Equal(got, want) {
		t.Fatal("tenant stream diverged across the drain handover")
	}
}

// TestNodeStateBackCompat pins the dual-format decode: a registry-less
// server still writes raw pool blobs (existing fleets keep working),
// and DecodeNodeState passes them through untouched.
func TestNodeStateBackCompat(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.bin")
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(5), hybridprng.WithShards(2), hybridprng.WithShardBuffer(16))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{StatePath: statePath})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	poolBlob, regBlob, err := DecodeNodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if regBlob != nil {
		t.Fatal("registry-less snapshot grew a registry blob")
	}
	if !bytes.Equal(poolBlob, blob) {
		t.Fatal("raw pool blob did not pass through DecodeNodeState")
	}
	if err := new(hybridprng.Pool).UnmarshalBinary(poolBlob); err != nil {
		t.Fatalf("raw pool blob no longer restores: %v", err)
	}
}

func TestSubstreamRateLimitHTTP(t *testing.T) {
	now := time.Unix(4000, 0)
	reg, err := substream.New(substream.Config{
		RootSeed:   1,
		RatePerSec: 16,
		Burst:      16,
		Now:        func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{Substreams: reg})
	if err != nil {
		t.Fatal(err)
	}
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()

	// The burst serves; the next draw is a clean 429 with a refill
	// hint, and the shed lands in the tenant's meters.
	getKeyedBytes(t, ht.URL, "metered", 16*8)
	resp, err := http.Get(keyURL(ht.URL, "metered", "u64", 1))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget keyed draw status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer of seconds", ra)
	}

	// The clock refills the bucket.
	now = now.Add(time.Second)
	getKeyedBytes(t, ht.URL, "metered", 8)

	// Per-tenant meters are scrapable.
	mresp, err := http.Get(ht.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	var metrics struct {
		Substreams struct {
			Tenants   int                     `json:"tenants"`
			Resident  int                     `json:"resident"`
			PerTenant []substream.TenantStats `json:"per_tenant"`
		} `json:"substreams"`
	}
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if metrics.Substreams.Tenants != 1 || len(metrics.Substreams.PerTenant) != 1 {
		t.Fatalf("substream metrics: %+v", metrics.Substreams)
	}
	ts := metrics.Substreams.PerTenant[0]
	if ts.Key != "metered" || ts.Sheds != 1 || ts.Bytes != 16*8+8 {
		t.Fatalf("tenant meters: %+v", ts)
	}
}

func TestSubstreamKeyValidationHTTP(t *testing.T) {
	reg, err := substream.New(substream.Config{RootSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := hybridprng.NewPool(resumeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{Substreams: reg})
	if err != nil {
		t.Fatal(err)
	}
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()
	for _, key := range []string{" ", "bad\x00key", string(bytes.Repeat([]byte("k"), substream.MaxKeyBytes+1))} {
		resp, err := http.Get(keyURL(ht.URL, key, "u64", 1))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("key %q status %d, want 400", key, resp.StatusCode)
		}
	}
	// Equivalent spellings draw one stream: a padded key continues
	// the trimmed key's stream rather than starting a fresh one.
	a := getKeyedBytes(t, ht.URL, "alice", 64)
	b := getKeyedBytes(t, ht.URL, " alice ", 64)
	if bytes.Equal(a, b) {
		t.Fatal("padded spelling restarted the stream instead of continuing it")
	}
}

func TestSubstreamRoutesAbsentWithoutRegistry(t *testing.T) {
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(5), hybridprng.WithShards(1), hybridprng.WithShardBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()
	resp, err := http.Get(ht.URL + "/v1/stream/alice/u64")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("keyed route on a registry-less server: status %d, want 404", resp.StatusCode)
	}
}

// BenchmarkServeSubstreamBytes measures the keyed /bytes path — the
// per-tenant analogue of BenchmarkServeBytes, with the registry
// lookup and metering on the hot path. 1M words per request.
func BenchmarkServeSubstreamBytes(b *testing.B) {
	reg, err := substream.New(substream.Config{RootSeed: 1})
	if err != nil {
		b.Fatal(err)
	}
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(1), hybridprng.WithHealthMonitoring(4))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(pool, Options{Substreams: reg})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	client := ts.Client()
	const words = 1 << 20
	url := fmt.Sprintf("%s/v1/stream/bench-tenant/bytes?n=%d", ts.URL, words*8)
	b.SetBytes(words * 8)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if got := drain(b, client, url); got != words*8 {
			b.Fatalf("short body: %d", got)
		}
	}
	b.ReportMetric(float64(b.N)*words/time.Since(start).Seconds(), "words/s")
}
