package photon

import (
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/rng"
)

func splitSrc(seed uint64) func(int) rng.Source {
	return func(w int) rng.Source {
		return baselines.NewSplitMix64(baselines.Mix64(seed + uint64(w)))
	}
}

func TestSimulateParallelDeterministic(t *testing.T) {
	tissue := ThreeLayerSkin()
	a, err := SimulateParallel(tissue, 8000, 4, splitSrc(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateParallel(tissue, 8000, 4, splitSrc(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rd != b.Rd || a.Tt != b.Tt || a.TotalSteps != b.TotalSteps {
		t.Error("parallel simulation not reproducible")
	}
}

func TestSimulateParallelMatchesSerialStatistics(t *testing.T) {
	// Different stream partitioning ⇒ not bit-identical, but the
	// physics must agree within Monte Carlo error.
	tissue := ThreeLayerSkin()
	serial, err := Simulate(tissue, 20000, baselines.NewSplitMix64(5))
	if err != nil {
		t.Fatal(err)
	}
	par, err := SimulateParallel(tissue, 20000, 4, splitSrc(6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.Rd-par.Rd) > 0.02 {
		t.Errorf("Rd: serial %g vs parallel %g", serial.Rd, par.Rd)
	}
	if math.Abs(par.Conservation()-1) > 0.02 {
		t.Errorf("parallel conservation = %g", par.Conservation())
	}
	if par.Rsp != serial.Rsp {
		t.Errorf("Rsp differs: %g vs %g", par.Rsp, serial.Rsp)
	}
}

func TestSimulateParallelEdgeCases(t *testing.T) {
	tissue := ThreeLayerSkin()
	// More workers than photons.
	res, err := SimulateParallel(tissue, 3, 16, splitSrc(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Photons != 3 {
		t.Errorf("photons = %d", res.Photons)
	}
	// Default worker count.
	if _, err := SimulateParallel(tissue, 100, 0, splitSrc(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateParallel(tissue, 0, 1, splitSrc(9)); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := SimulateParallel(tissue, 10, 1, nil); err == nil {
		t.Error("nil factory should fail")
	}
}
