package photon

import (
	"fmt"
	"io"
)

// WriteReport writes an MCML-style text report of a grid simulation:
// the scalar summary (RAT block), the per-layer absorption, the
// depth-resolved absorption A(z) and the radial diffuse reflectance
// Rd(r) — the output format downstream plotting scripts of the MCML
// family expect, adapted to this package's tallies.
func WriteReport(w io.Writer, t *Tissue, r GridResult) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# photon migration report (%d photons)\n", r.Photons); err != nil {
		return err
	}
	if err := p("# tissue: %d layers, n_above=%.3f n_below=%.3f\n", len(t.Layers), t.NAbove, t.NBelow); err != nil {
		return err
	}
	for i, l := range t.Layers {
		if err := p("# layer %d: mua=%.4g mus=%.4g g=%.3f n=%.3f d=%.4g\n",
			i, l.Mua, l.Mus, l.G, l.N, l.Thickness); err != nil {
			return err
		}
	}

	if err := p("\nRAT # reflectance, absorption, transmittance\n"); err != nil {
		return err
	}
	if err := p("%-12.6f # specular reflectance Rsp\n", r.Rsp); err != nil {
		return err
	}
	if err := p("%-12.6f # diffuse reflectance Rd\n", r.Rd); err != nil {
		return err
	}
	var totalA float64
	for _, a := range r.Absorbed {
		totalA += a
	}
	if err := p("%-12.6f # absorbed fraction A\n", totalA); err != nil {
		return err
	}
	if err := p("%-12.6f # transmittance Tt\n", r.Tt); err != nil {
		return err
	}

	if err := p("\nA_l # absorption per layer\n"); err != nil {
		return err
	}
	for i, a := range r.Absorbed {
		if err := p("%d %-12.6f\n", i, a); err != nil {
			return err
		}
	}

	if err := p("\nA_z # absorption density [1/cm], dz=%.4g\n", r.Cfg.DZ); err != nil {
		return err
	}
	for i, a := range r.AZ {
		if err := p("%-10.4g %-12.6g\n", (float64(i)+0.5)*r.Cfg.DZ, a); err != nil {
			return err
		}
	}

	if err := p("\nRd_r # diffuse reflectance density [1/cm^2], dr=%.4g\n", r.Cfg.DR); err != nil {
		return err
	}
	for i, v := range r.RdR {
		if err := p("%-10.4g %-12.6g\n", (float64(i)+0.5)*r.Cfg.DR, v); err != nil {
			return err
		}
	}
	return nil
}
