package photon

import (
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
)

func TestNewTissueValidation(t *testing.T) {
	if _, err := NewTissue(1, 1, nil); err == nil {
		t.Error("empty tissue should fail")
	}
	if _, err := NewTissue(0.5, 1, []Layer{{Mua: 1, Mus: 1, N: 1.4, Thickness: 1}}); err == nil {
		t.Error("ambient n < 1 should fail")
	}
	if _, err := NewTissue(1, 1, []Layer{{Mua: -1, Mus: 1, N: 1.4, Thickness: 1}}); err == nil {
		t.Error("negative µa should fail")
	}
	if _, err := NewTissue(1, 1, []Layer{{Mua: 0, Mus: 0, N: 1.4, Thickness: 1}}); err == nil {
		t.Error("vacuum layer should fail")
	}
	if _, err := NewTissue(1, 1, []Layer{{Mua: 1, Mus: 1, G: 1, N: 1.4, Thickness: 1}}); err == nil {
		t.Error("g = 1 should fail")
	}
	if _, err := NewTissue(1, 1, []Layer{{Mua: 1, Mus: 1, N: 1.4, Thickness: 0}}); err == nil {
		t.Error("zero thickness should fail")
	}
}

func TestFresnel(t *testing.T) {
	// Matched indices: no reflection.
	r, ca2 := fresnel(1.4, 1.4, 0.5)
	if r != 0 || ca2 != 0.5 {
		t.Errorf("matched fresnel = %g, %g", r, ca2)
	}
	// Normal incidence 1.0 → 1.5: R = (0.5/2.5)² = 0.04.
	r, _ = fresnel(1.0, 1.5, 1.0)
	if math.Abs(r-0.04) > 1e-12 {
		t.Errorf("normal incidence R = %g, want 0.04", r)
	}
	// Total internal reflection: 1.5 → 1.0 at grazing angle.
	r, _ = fresnel(1.5, 1.0, 0.1)
	if r != 1 {
		t.Errorf("TIR R = %g, want 1", r)
	}
	// Reflectance is within [0, 1] across angles.
	for ca := 0.01; ca <= 1.0; ca += 0.01 {
		r, _ := fresnel(1.0, 1.4, ca)
		if r < 0 || r > 1 {
			t.Fatalf("fresnel out of range at ca=%g: %g", ca, r)
		}
	}
}

func TestScatterHGUnitVector(t *testing.T) {
	src := baselines.NewSplitMix64(4)
	ux, uy, uz := 0.0, 0.0, 1.0
	for i := 0; i < 10000; i++ {
		ux, uy, uz = scatterHG(0.8, ux, uy, uz, src)
		norm := ux*ux + uy*uy + uz*uz
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("direction norm² = %.12f after %d scatters", norm, i+1)
		}
	}
}

func TestScatterHGMeanCosine(t *testing.T) {
	// ⟨cos θ⟩ of the HG deflection must equal g.
	src := baselines.NewSplitMix64(9)
	for _, g := range []float64{0, 0.5, 0.9} {
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			// Scatter from +z and read the deflection cosine directly.
			_, _, nz := scatterHG(g, 0, 0, 1, src)
			sum += nz
		}
		mean := sum / n
		if math.Abs(mean-g) > 0.01 {
			t.Errorf("g=%g: mean deflection cosine = %.4f", g, mean)
		}
	}
}

func TestSimulateConservation(t *testing.T) {
	res, err := Simulate(ThreeLayerSkin(), 20000, baselines.NewSplitMix64(11))
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Conservation(); math.Abs(c-1) > 0.02 {
		t.Errorf("energy conservation = %.4f, want ≈ 1 (roulette noise only)", c)
	}
	if res.Rd <= 0 || res.Rd >= 1 {
		t.Errorf("Rd = %g", res.Rd)
	}
	if res.StepsPerPhoton() <= 1 {
		t.Errorf("steps/photon = %g", res.StepsPerPhoton())
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, _ := Simulate(ThreeLayerSkin(), 2000, baselines.NewSplitMix64(5))
	b, _ := Simulate(ThreeLayerSkin(), 2000, baselines.NewSplitMix64(5))
	if a.Rd != b.Rd || a.Tt != b.Tt || a.TotalSteps != b.TotalSteps {
		t.Error("simulation not deterministic for equal seeds")
	}
}

func TestSimulateAbsorbingSlab(t *testing.T) {
	// A thick, strongly absorbing, matched-index slab: essentially
	// everything is absorbed, nothing transmitted, Rsp = 0.
	tissue, err := NewTissue(1, 1, []Layer{{Mua: 100, Mus: 1, G: 0, N: 1, Thickness: 10}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tissue, 5000, baselines.NewSplitMix64(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rsp != 0 {
		t.Errorf("matched boundary Rsp = %g", res.Rsp)
	}
	if res.Absorbed[0] < 0.98 {
		t.Errorf("absorbed = %g, want ≈ 1", res.Absorbed[0])
	}
	if res.Tt > 0.001 {
		t.Errorf("Tt = %g through 1000 mean free paths", res.Tt)
	}
}

func TestSimulateThinTransparentSlab(t *testing.T) {
	// Nearly transparent matched slab: almost everything transmits.
	tissue, err := NewTissue(1, 1, []Layer{{Mua: 0.001, Mus: 0.001, G: 0, N: 1, Thickness: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tissue, 5000, baselines.NewSplitMix64(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tt < 0.99 {
		t.Errorf("Tt = %g, want ≈ 1 for a transparent slab", res.Tt)
	}
}

func TestSimulateMismatchedIndexRaisesReflectance(t *testing.T) {
	matched, _ := NewTissue(1, 1, []Layer{{Mua: 0.1, Mus: 100, G: 0.9, N: 1.0, Thickness: 1}})
	mismatched, _ := NewTissue(1, 1, []Layer{{Mua: 0.1, Mus: 100, G: 0.9, N: 1.5, Thickness: 1}})
	rm, _ := Simulate(matched, 10000, baselines.NewSplitMix64(21))
	rx, _ := Simulate(mismatched, 10000, baselines.NewSplitMix64(21))
	if rx.Rsp <= rm.Rsp {
		t.Error("index mismatch should produce specular reflection")
	}
	// Total escape through the top (Rsp+Rd) differs between the two;
	// both must conserve energy.
	if math.Abs(rm.Conservation()-1) > 0.02 || math.Abs(rx.Conservation()-1) > 0.02 {
		t.Error("conservation violated")
	}
}

func TestSimulateWithHybridPRNG(t *testing.T) {
	w, err := core.NewWalker(bitsource.Glibc(31), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(ThreeLayerSkin(), 5000, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Conservation()-1) > 0.03 {
		t.Errorf("conservation with hybrid PRNG = %g", res.Conservation())
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(ThreeLayerSkin(), 0, baselines.NewSplitMix64(1)); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestCountClashes(t *testing.T) {
	// 200k draws truncated to 16 bits: heavy birthday collisions.
	st, err := CountClashes(baselines.NewSplitMix64(2), 200000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicates == 0 {
		t.Error("16-bit init must collide at 200k photons")
	}
	// Same draws at 64 bits: essentially none.
	st64, err := CountClashes(baselines.NewSplitMix64(2), 200000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st64.Duplicates != 0 {
		t.Errorf("64-bit init collided %d times in 200k", st64.Duplicates)
	}
	if st.DupRate() <= st64.DupRate() {
		t.Error("wider init values must reduce the clash rate")
	}
	if _, err := CountClashes(baselines.NewSplitMix64(1), 0, 32); err == nil {
		t.Error("photons=0 should fail")
	}
	if _, err := CountClashes(baselines.NewSplitMix64(1), 10, 65); err == nil {
		t.Error("valueBits=65 should fail")
	}
	if (ClashStats{}).DupRate() != 0 {
		t.Error("empty clash stats rate should be 0")
	}
}

func TestClashRateMWCVersusHybrid(t *testing.T) {
	// The paper's quality claim in miniature: CUDAMCML's 32-bit MWC
	// initialisation collides measurably at large photon counts
	// (scaled: 20-bit window at 100k photons); the hybrid PRNG's
	// 64-bit ids do not.
	mwc := baselines.NewMWCForThread(0, 1234)
	st32, err := CountClashes(mwc, 100000, 20)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := core.NewWalker(bitsource.Glibc(77), core.Config{})
	st64, err := CountClashes(w, 100000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st32.Duplicates <= st64.Duplicates {
		t.Errorf("MWC/20-bit dups %d should exceed hybrid/64-bit dups %d",
			st32.Duplicates, st64.Duplicates)
	}
}

func TestFigure8Shape(t *testing.T) {
	// Hybrid ≈ 20% faster than the original across photon counts.
	steps := 300.0
	for _, n := range []int64{1_000_000, 16_000_000, 64_000_000} {
		orig, err := SimulateTiming(VariantOriginal, n, steps)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := SimulateTiming(VariantHybrid, n, steps)
		if err != nil {
			t.Fatal(err)
		}
		speedup := 1 - hyb.SimNs/orig.SimNs
		if speedup < 0.10 || speedup > 0.35 {
			t.Errorf("photons=%d: speedup = %.0f%%, want ≈ 20%%", n, 100*speedup)
		}
	}
}

func TestFigure8TimeScalesLinearly(t *testing.T) {
	a, _ := SimulateTiming(VariantHybrid, 1_000_000, 300)
	b, _ := SimulateTiming(VariantHybrid, 8_000_000, 300)
	ratio := b.SimNs / a.SimNs
	if ratio < 6.5 || ratio > 9.5 {
		t.Errorf("8× photons took %.1f× time", ratio)
	}
}

func TestSimulateTimingValidation(t *testing.T) {
	if _, err := SimulateTiming(VariantHybrid, 0, 10); err == nil {
		t.Error("photons=0 should fail")
	}
	if _, err := SimulateTiming(VariantHybrid, 10, 0); err == nil {
		t.Error("steps=0 should fail")
	}
	if _, err := SimulateTiming("bogus", 10, 10); err == nil {
		t.Error("unknown variant should fail")
	}
}

func TestMeasuredStepsFeedTimingModel(t *testing.T) {
	// End-to-end: measure the real mean interaction count, then time
	// the simulated platform with it.
	res, err := Simulate(ThreeLayerSkin(), 3000, baselines.NewSplitMix64(17))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateTiming(VariantHybrid, 1_000_000, res.StepsPerPhoton())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimNs <= 0 {
		t.Error("no simulated time")
	}
}
