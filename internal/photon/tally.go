package photon

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// TallyConfig configures MCML-style spatial grids: diffuse
// reflectance by exit radius, Rd(r), and absorbed energy by depth,
// A(z). Overflow goes to the last bin, as in MCML.
type TallyConfig struct {
	DR float64 // radial bin width [cm]
	NR int     // radial bins
	DZ float64 // depth bin width [cm]
	NZ int     // depth bins
}

func (c TallyConfig) validate() error {
	if c.DR <= 0 || c.NR < 1 || c.DZ <= 0 || c.NZ < 1 {
		return fmt.Errorf("photon: invalid tally grid %+v", c)
	}
	return nil
}

// GridResult extends Result with the spatial tallies.
type GridResult struct {
	Result
	Cfg TallyConfig
	// RdR[i] is the diffuse reflectance per unit area in radial ring
	// i [1/cm²] (weight fraction divided by the ring area).
	RdR []float64
	// AZ[i] is the absorbed weight fraction per unit depth in slab i
	// [1/cm].
	AZ []float64
}

// SimulateGrid runs the transport like Simulate, additionally
// tracking lateral position and recording the Rd(r) and A(z) grids.
func SimulateGrid(t *Tissue, n int64, src rng.Source, cfg TallyConfig) (GridResult, error) {
	if n < 1 {
		return GridResult{}, fmt.Errorf("photon: n = %d < 1", n)
	}
	if err := cfg.validate(); err != nil {
		return GridResult{}, err
	}
	gr := GridResult{
		Result: Result{Photons: n, Absorbed: make([]float64, len(t.Layers))},
		Cfg:    cfg,
		RdR:    make([]float64, cfg.NR),
		AZ:     make([]float64, cfg.NZ),
	}
	n0, n1 := t.NAbove, t.Layers[0].N
	rsp := (n0 - n1) * (n0 - n1) / ((n0 + n1) * (n0 + n1))
	gr.Rsp = rsp

	for i := int64(0); i < n; i++ {
		simulateOneGrid(t, src, &gr, 1-rsp)
	}
	inv := 1 / float64(n)
	gr.Rd *= inv
	gr.Tt *= inv
	for i := range gr.Absorbed {
		gr.Absorbed[i] *= inv
	}
	for i := range gr.RdR {
		// Ring area 2π r dr with r at the ring centre.
		r := (float64(i) + 0.5) * cfg.DR
		area := 2 * math.Pi * r * cfg.DR
		gr.RdR[i] *= inv / area
	}
	for i := range gr.AZ {
		gr.AZ[i] *= inv / cfg.DZ
	}
	return gr, nil
}

// simulateOneGrid is simulateOne with lateral tracking and grid
// recording. The transport logic is kept in lockstep with
// simulateOne (see physics.go); TestGridMatchesScalarTallies pins
// the two together.
func simulateOneGrid(t *Tissue, src rng.Source, gr *GridResult, w0 float64) {
	cfg := gr.Cfg
	x, y, z := 0.0, 0.0, 0.0
	ux, uy, uz := 0.0, 0.0, 1.0
	layer := 0
	w := w0

	for step := 0; step < maxSteps; step++ {
		l := t.Layers[layer]
		mut := l.Mut()
		u := rng.Float64(src)
		if u <= 0 {
			u = 1e-12
		}
		s := -math.Log(u) / mut

		for s > 0 {
			var db float64
			if uz > 0 {
				db = (t.bounds[layer] - z) / uz
			} else if uz < 0 {
				db = (t.top(layer) - z) / uz
			} else {
				db = math.Inf(1)
			}
			if db > s {
				x += s * ux
				y += s * uy
				z += s * uz
				s = 0
				break
			}
			x += db * ux
			y += db * uy
			z += db * uz
			s = (s - db) * mut

			wasUp := uz < 0
			exited, newLayer := crossBoundary(t, layer, &ux, &uy, &uz, src, &gr.Result, w)
			if exited {
				if wasUp {
					// Diffuse reflectance: bin by exit radius.
					r := math.Sqrt(x*x + y*y)
					bin := int(r / cfg.DR)
					if bin >= cfg.NR {
						bin = cfg.NR - 1
					}
					gr.RdR[bin] += w
				}
				return
			}
			if newLayer != layer {
				s /= t.Layers[newLayer].Mut()
				layer = newLayer
			} else {
				s /= mut
			}
			mut = t.Layers[layer].Mut()
		}

		gr.TotalSteps++
		lcur := t.Layers[layer]
		dw := w * lcur.Mua / lcur.Mut()
		gr.Absorbed[layer] += dw
		zbin := int(z / cfg.DZ)
		if zbin < 0 {
			zbin = 0
		}
		if zbin >= cfg.NZ {
			zbin = cfg.NZ - 1
		}
		gr.AZ[zbin] += dw
		w -= dw

		if w < rouletteThreshold {
			if rng.Float64(src) < rouletteChance {
				w /= rouletteChance
			} else {
				gr.RouletteKills++
				return
			}
		}
		ux, uy, uz = scatterHG(lcur.G, ux, uy, uz, src)
	}
	gr.Absorbed[layer] += w
}

// BeerLambertTransmittance returns the analytic unscattered
// (ballistic) transmittance of a collimated beam through the stack:
// exp(−Σ µtᵢ·dᵢ), ignoring boundary reflections — the classical
// closed form the simulation must reproduce in the scattering-free
// limit.
func BeerLambertTransmittance(t *Tissue) float64 {
	att := 0.0
	for _, l := range t.Layers {
		att += l.Mut() * l.Thickness
	}
	return math.Exp(-att)
}
