package photon

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/rng"
)

// ClashStats quantifies the paper's "weight clashes": photons whose
// initial RNG draw collides with another photon's, so the two
// packets start (and with colliding per-thread streams, continue) as
// one — wasted, serialised work. The 32-bit initialisation values of
// the CUDAMCML MWC collide by the birthday bound; the hybrid PRNG's
// 64-bit vertex ids effectively never do.
type ClashStats struct {
	Photons    int64
	Duplicates int64
}

// DupRate returns the duplicate fraction.
func (c ClashStats) DupRate() float64 {
	if c.Photons == 0 {
		return 0
	}
	return float64(c.Duplicates) / float64(c.Photons)
}

// CountClashes draws one initialisation value per photon from src,
// truncated to valueBits (32 for the MWC baseline, 64 for the hybrid
// PRNG), and counts duplicates.
func CountClashes(src rng.Source, photons int64, valueBits uint) (ClashStats, error) {
	if photons < 1 {
		return ClashStats{}, fmt.Errorf("photon: photons = %d < 1", photons)
	}
	if valueBits == 0 || valueBits > 64 {
		return ClashStats{}, fmt.Errorf("photon: valueBits = %d out of (0, 64]", valueBits)
	}
	mask := ^uint64(0)
	if valueBits < 64 {
		mask = 1<<valueBits - 1
	}
	seen := make(map[uint64]struct{}, photons)
	stats := ClashStats{Photons: photons}
	for i := int64(0); i < photons; i++ {
		v := src.Uint64() & mask
		if _, dup := seen[v]; dup {
			stats.Duplicates++
		} else {
			seen[v] = struct{}{}
		}
	}
	return stats, nil
}

// Figure 8 cost model. Each iteration processes one resident batch
// of photon packets (the paper: "a fixed quantity of photon packets
// are processed in each iteration"). The transport kernel itself is
// identical in both variants (CUDAMCML's kernels are reused; in-
// kernel scattering draws stay with the inline MWC). The difference
// is the initialisation randomness:
//
//   - "original" (CUDAMCML): before every transport launch a device
//     kernel re-initialises the per-photon RNG states and seed
//     values — init_RNG's global-memory fetch of seeds and
//     safe-prime multipliers plus the MWC warm-up loop — and stores
//     the initialisation numbers to global memory. That kernel
//     serialises with transport on the single compute engine — the
//     GPU waits (the paper's "extra space for storing the random
//     numbers" and idle-resource critique).
//
//   - "hybrid": the CPU produces the initialisation numbers (weight
//     and launch seed, 2 per photon at 24 feed-bytes each) and
//     streams them over PCIe while the previous iteration's
//     transport kernel runs (Algorithm 4 lines 7–8), so their cost
//     disappears into the overlap. The feed is 2·24 B ≈ 28 ns/photon
//     at 1.7 GB/s, below the ≈ 58 ns/photon transport time, so the
//     overlap genuinely hides it.
//
// With the constants below the original's initialisation kernel
// costs ≈ 20% of a transport launch — the paper's reported ≈ 20%
// end-to-end speedup, size-independent as in Figure 8.
const (
	initNumbersPerPhoton      = 2
	initKernelCyclesPerPhoton = 5000  // init_RNG: global seed/multiplier fetch + warm-up + store
	initLoadCycles            = 40    // transport-side reload per number
	transportCyclesStep       = 60    // move/absorb/scatter per interaction
	residentPhotons           = 30720 // 128 threads × 240 cores
)

// Figure 8 variant names.
const (
	VariantOriginal = "original-cudamcml"
	VariantHybrid   = "hybrid-prng"
)

// SimReport is one Figure 8 datum.
type SimReport struct {
	Variant        string
	Photons        int64
	StepsPerPhoton float64
	SimNs          gpu.Time
	CPUUtil        float64
	GPUUtil        float64
}

func (r SimReport) String() string {
	return fmt.Sprintf("%-18s photons=%d steps/photon=%.1f time=%.3f ms cpu=%.0f%% gpu=%.0f%%",
		r.Variant, r.Photons, r.StepsPerPhoton, r.SimNs/1e6, 100*r.CPUUtil, 100*r.GPUUtil)
}

// SimulateTiming books the Figure 8 schedule for `photons` packets
// whose mean interaction count is stepsPerPhoton (measure it with
// Simulate on the real physics; ThreeLayerSkin gives ≈ 25–40).
func SimulateTiming(variant string, photons int64, stepsPerPhoton float64) (SimReport, error) {
	if photons < 1 {
		return SimReport{}, fmt.Errorf("photon: photons = %d < 1", photons)
	}
	if stepsPerPhoton <= 0 {
		return SimReport{}, fmt.Errorf("photon: stepsPerPhoton = %g must be positive", stepsPerPhoton)
	}
	model := hybrid.DefaultCostModel()
	p, err := hybrid.NewPlatform(model)
	if err != nil {
		return SimReport{}, err
	}
	start := p.Sim.Horizon()
	feedStream := p.Device.NewStream(start)
	genStream := p.Device.NewStream(start)
	feedReady := start

	remaining := photons
	for remaining > 0 {
		batch := int64(residentPhotons)
		if batch > remaining {
			batch = remaining
		}
		remaining -= batch
		transport := gpu.Kernel{
			Name:            "P",
			Threads:         int(batch),
			CyclesPerThread: stepsPerPhoton*transportCyclesStep + initNumbersPerPhoton*initLoadCycles,
		}
		switch variant {
		case VariantOriginal:
			// RNG/state initialisation kernel, serialised before
			// transport on the same stream.
			genStream.Launch(gpu.Kernel{
				Name:            "R",
				Threads:         int(batch),
				CyclesPerThread: initKernelCyclesPerPhoton,
			})
			genStream.Launch(transport)
		case VariantHybrid:
			bytes := int64(model.FeedBytesPerNumber() * initNumbersPerPhoton * float64(batch))
			f := p.Host.Compute("F", feedReady, model.FeedChunkOverheadNs+float64(bytes)/model.FeedBytesPerSec*1e9)
			feedReady = f.End
			feedStream.WaitFor(f.End)
			tr := feedStream.CopyH2D("T", bytes)
			genStream.WaitFor(tr.End)
			genStream.Launch(transport)
		default:
			return SimReport{}, fmt.Errorf("photon: unknown variant %q", variant)
		}
	}
	end := p.Sim.Horizon()
	return SimReport{
		Variant:        variant,
		Photons:        photons,
		StepsPerPhoton: stepsPerPhoton,
		SimNs:          end - start,
		CPUUtil:        p.Sim.Utilization(p.Host.Resource(), start, end),
		GPUUtil:        p.Sim.Utilization(p.Device.ComputeResource(), start, end),
	}, nil
}
