// Package photon implements the paper's second application: Monte
// Carlo photon migration through layered tissue (Section VI), an
// MCML/CUDAMCML-style variance-reduction simulation — photon packets
// carry a weight, deposit a fraction at every interaction site,
// scatter by the Henyey–Greenstein phase function, refract/reflect
// at layer boundaries by Fresnel's laws and die by Russian roulette.
//
// The physics runs for real against any rng.Source; the Figure 8
// timing comparison against the CUDAMCML baseline runs on the
// simulated platform (see sim.go).
package photon

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Layer is one tissue layer.
type Layer struct {
	Mua       float64 // absorption coefficient [1/cm]
	Mus       float64 // scattering coefficient [1/cm]
	G         float64 // scattering anisotropy ⟨cos θ⟩
	N         float64 // refractive index
	Thickness float64 // [cm]
}

// Mut returns the total interaction coefficient µa + µs.
func (l Layer) Mut() float64 { return l.Mua + l.Mus }

// Tissue is a stack of layers with ambient media above and below.
type Tissue struct {
	NAbove float64
	NBelow float64
	Layers []Layer
	bounds []float64 // cumulative z of layer bottoms
}

// NewTissue validates and finalises a tissue stack.
func NewTissue(nAbove, nBelow float64, layers []Layer) (*Tissue, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("photon: tissue needs at least one layer")
	}
	if nAbove < 1 || nBelow < 1 {
		return nil, fmt.Errorf("photon: ambient refractive indices must be ≥ 1")
	}
	t := &Tissue{NAbove: nAbove, NBelow: nBelow, Layers: layers}
	z := 0.0
	for i, l := range layers {
		if l.Mua < 0 || l.Mus < 0 || l.Thickness <= 0 || l.N < 1 {
			return nil, fmt.Errorf("photon: layer %d has invalid parameters %+v", i, l)
		}
		if l.G <= -1 || l.G >= 1 {
			return nil, fmt.Errorf("photon: layer %d anisotropy %g outside (−1, 1)", i, l.G)
		}
		if l.Mut() == 0 {
			return nil, fmt.Errorf("photon: layer %d is vacuum (µa = µs = 0)", i)
		}
		z += l.Thickness
		t.bounds = append(t.bounds, z)
	}
	return t, nil
}

// top returns the z of the top of layer i.
func (t *Tissue) top(i int) float64 {
	if i == 0 {
		return 0
	}
	return t.bounds[i-1]
}

// ThreeLayerSkin returns the paper-style three-layer demo medium
// (epidermis / dermis / subcutaneous fat, generic optical
// coefficients at ~633 nm).
func ThreeLayerSkin() *Tissue {
	t, err := NewTissue(1.0, 1.4, []Layer{
		{Mua: 3.0, Mus: 100, G: 0.8, N: 1.4, Thickness: 0.01},
		{Mua: 0.3, Mus: 120, G: 0.9, N: 1.4, Thickness: 0.2},
		{Mua: 0.1, Mus: 70, G: 0.8, N: 1.4, Thickness: 0.5},
	})
	if err != nil {
		panic(err) // static configuration, cannot fail
	}
	return t
}

// Result accumulates the simulation tallies.
type Result struct {
	Photons       int64
	Rsp           float64   // specular reflection at entry
	Rd            float64   // diffuse reflectance (weight fraction)
	Tt            float64   // transmittance
	Absorbed      []float64 // per-layer absorbed fraction
	TotalSteps    int64     // interaction sites over all photons
	RouletteKills int64
}

// StepsPerPhoton returns the mean number of interaction sites.
func (r Result) StepsPerPhoton() float64 {
	if r.Photons == 0 {
		return 0
	}
	return float64(r.TotalSteps) / float64(r.Photons)
}

// Conservation returns Rsp + Rd + Tt + ΣA, which must be ≈ 1.
func (r Result) Conservation() float64 {
	s := r.Rsp + r.Rd + r.Tt
	for _, a := range r.Absorbed {
		s += a
	}
	return s
}

const (
	rouletteThreshold = 1e-4
	rouletteChance    = 0.1
	maxSteps          = 100000
)

// Simulate launches n photon packets straight down at the origin and
// returns the tallies. Deterministic given src.
func Simulate(t *Tissue, n int64, src rng.Source) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("photon: n = %d < 1", n)
	}
	res := Result{Photons: n, Absorbed: make([]float64, len(t.Layers))}
	// Specular reflection at the top surface.
	n0, n1 := t.NAbove, t.Layers[0].N
	rsp := (n0 - n1) * (n0 - n1) / ((n0 + n1) * (n0 + n1))
	res.Rsp = rsp

	inv := 1 / float64(n)
	for i := int64(0); i < n; i++ {
		simulateOne(t, src, &res, (1-rsp)*1.0)
	}
	// Normalise tallies.
	res.Rd *= inv
	res.Tt *= inv
	for i := range res.Absorbed {
		res.Absorbed[i] *= inv
	}
	return res, nil
}

// simulateOne transports one packet with initial weight w0. Only z
// matters for the slab tallies; the lateral coordinates drop out.
func simulateOne(t *Tissue, src rng.Source, res *Result, w0 float64) {
	z := 0.0
	ux, uy, uz := 0.0, 0.0, 1.0
	layer := 0
	w := w0

	for step := 0; step < maxSteps; step++ {
		l := t.Layers[layer]
		mut := l.Mut()
		// Sample a free path.
		u := rng.Float64(src)
		if u <= 0 {
			u = 1e-12
		}
		s := -math.Log(u) / mut

		// Does the path cross a boundary?
		for s > 0 {
			var db float64
			if uz > 0 {
				db = (t.bounds[layer] - z) / uz
			} else if uz < 0 {
				db = (t.top(layer) - z) / uz
			} else {
				db = math.Inf(1)
			}
			if db > s {
				// Interaction inside the layer.
				z += s * uz
				s = 0
				break
			}
			// Move to the boundary and resolve it.
			z += db * uz
			s = (s - db) * mut // residual, rescaled below if µt changes

			exited, newLayer := crossBoundary(t, layer, &ux, &uy, &uz, src, res, w)
			if exited {
				return
			}
			if newLayer != layer {
				// Rescale residual path to the new layer's µt.
				s /= t.Layers[newLayer].Mut()
				layer = newLayer
			} else {
				// Internal reflection: same layer, same µt.
				s /= mut
			}
			mut = t.Layers[layer].Mut()
		}

		// Absorb.
		res.TotalSteps++
		lcur := t.Layers[layer]
		dw := w * lcur.Mua / lcur.Mut()
		res.Absorbed[layer] += dw
		w -= dw

		// Roulette.
		if w < rouletteThreshold {
			if rng.Float64(src) < rouletteChance {
				w /= rouletteChance
			} else {
				res.RouletteKills++
				return
			}
		}

		// Scatter (Henyey–Greenstein).
		ux, uy, uz = scatterHG(lcur.G, ux, uy, uz, src)
	}
	// Pathological packet: deposit the remainder locally to preserve
	// conservation.
	res.Absorbed[layer] += w
}

// crossBoundary handles a packet arriving at the top (uz < 0) or
// bottom (uz > 0) of `layer`: Fresnel reflection keeps it inside
// (direction mirrored), transmission moves it to the adjacent layer
// or out of the tissue (tallying Rd/Tt with weight w). It returns
// whether the packet left the tissue and the (possibly new) layer.
func crossBoundary(t *Tissue, layer int, ux, uy, uz *float64, src rng.Source, res *Result, w float64) (exited bool, newLayer int) {
	ni := t.Layers[layer].N
	var nt float64
	goingDown := *uz > 0
	if goingDown {
		if layer == len(t.Layers)-1 {
			nt = t.NBelow
		} else {
			nt = t.Layers[layer+1].N
		}
	} else {
		if layer == 0 {
			nt = t.NAbove
		} else {
			nt = t.Layers[layer-1].N
		}
	}
	ca1 := math.Abs(*uz)
	r, ca2 := fresnel(ni, nt, ca1)
	if rng.Float64(src) <= r {
		// Reflect: mirror uz.
		*uz = -*uz
		return false, layer
	}
	// Transmit: refract the direction.
	scale := ni / nt
	*ux *= scale
	*uy *= scale
	if goingDown {
		*uz = ca2
		if layer == len(t.Layers)-1 {
			res.Tt += w
			return true, layer
		}
		return false, layer + 1
	}
	*uz = -ca2
	if layer == 0 {
		res.Rd += w
		return true, layer
	}
	return false, layer - 1
}

// fresnel returns the unpolarised Fresnel reflectance for incidence
// cosine ca1 between indices ni → nt, and the transmission cosine.
func fresnel(ni, nt, ca1 float64) (r, ca2 float64) {
	if ni == nt {
		return 0, ca1
	}
	sa1 := math.Sqrt(1 - ca1*ca1)
	sa2 := ni / nt * sa1
	if sa2 >= 1 {
		return 1, 0 // total internal reflection
	}
	ca2 = math.Sqrt(1 - sa2*sa2)
	if ca1 > 1-1e-12 {
		// Normal incidence.
		rn := (ni - nt) / (ni + nt)
		return rn * rn, ca2
	}
	// General case: average of s- and p-polarised reflectances.
	rs := (ni*ca1 - nt*ca2) / (ni*ca1 + nt*ca2)
	rp := (ni*ca2 - nt*ca1) / (ni*ca2 + nt*ca1)
	return (rs*rs + rp*rp) / 2, ca2
}

// scatterHG samples the Henyey–Greenstein deflection cosine for
// anisotropy g, a uniform azimuth, and rotates the direction.
func scatterHG(g, ux, uy, uz float64, src rng.Source) (nx, ny, nz float64) {
	var ct float64
	u := rng.Float64(src)
	if g == 0 {
		ct = 2*u - 1
	} else {
		tmp := (1 - g*g) / (1 - g + 2*g*u)
		ct = (1 + g*g - tmp*tmp) / (2 * g)
		if ct < -1 {
			ct = -1
		}
		if ct > 1 {
			ct = 1
		}
	}
	st := math.Sqrt(1 - ct*ct)
	phi := 2 * math.Pi * rng.Float64(src)
	cp, sp := math.Cos(phi), math.Sin(phi)

	if math.Abs(uz) > 0.99999 {
		nx = st * cp
		ny = st * sp
		nz = ct * math.Copysign(1, uz)
		return
	}
	den := math.Sqrt(1 - uz*uz)
	nx = st*(ux*uz*cp-uy*sp)/den + ux*ct
	ny = st*(uy*uz*cp+ux*sp)/den + uy*ct
	nz = -den*st*cp + uz*ct
	return
}
