package photon

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rng"
)

// SimulateParallel runs the transport across `workers` goroutines,
// each with its own source from newSrc (the paper's thread model:
// private RNG state per worker, no sharing). Results are merged;
// the outcome is deterministic for a fixed worker count and source
// factory, independent of scheduling, because each worker owns a
// fixed share of the photons.
func SimulateParallel(t *Tissue, n int64, workers int, newSrc func(worker int) rng.Source) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("photon: n = %d < 1", n)
	}
	if newSrc == nil {
		return Result{}, fmt.Errorf("photon: nil source factory")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > n {
		workers = int(n)
	}
	partial := make([]Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	share := n / int64(workers)
	extra := n % int64(workers)
	for w := 0; w < workers; w++ {
		cnt := share
		if int64(w) < extra {
			cnt++
		}
		wg.Add(1)
		go func(w int, cnt int64) {
			defer wg.Done()
			if cnt == 0 {
				partial[w] = Result{Absorbed: make([]float64, len(t.Layers))}
				return
			}
			partial[w], errs[w] = Simulate(t, cnt, newSrc(w))
		}(w, cnt)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	// Merge: tallies are weight fractions of each worker's photons;
	// reweight by the worker's share.
	total := Result{Photons: n, Absorbed: make([]float64, len(t.Layers))}
	for _, p := range partial {
		if p.Photons == 0 {
			continue
		}
		f := float64(p.Photons) / float64(n)
		total.Rsp = p.Rsp // identical constant across workers
		total.Rd += p.Rd * f
		total.Tt += p.Tt * f
		for i := range total.Absorbed {
			total.Absorbed[i] += p.Absorbed[i] * f
		}
		total.TotalSteps += p.TotalSteps
		total.RouletteKills += p.RouletteKills
	}
	return total, nil
}
