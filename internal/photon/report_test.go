package photon

import (
	"io"
	"strings"
	"testing"

	"repro/internal/baselines"
)

func TestWriteReport(t *testing.T) {
	tissue := ThreeLayerSkin()
	gr, err := SimulateGrid(tissue, 2000, baselines.NewSplitMix64(3),
		TallyConfig{DR: 0.05, NR: 4, DZ: 0.1, NZ: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteReport(&buf, tissue, gr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RAT", "A_l", "A_z", "Rd_r", "specular", "layer 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The grids must have the configured number of rows.
	if got := strings.Count(out, "\n"); got < 4+4+4+3 {
		t.Errorf("report suspiciously short (%d lines)", got)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n--
	if f.n <= 0 {
		return 0, io.ErrShortWrite
	}
	return len(p), nil
}

func TestWriteReportPropagatesErrors(t *testing.T) {
	tissue := ThreeLayerSkin()
	gr, err := SimulateGrid(tissue, 100, baselines.NewSplitMix64(4),
		TallyConfig{DR: 0.1, NR: 2, DZ: 0.1, NZ: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(&failWriter{n: 2}, tissue, gr); err == nil {
		t.Error("write failure must propagate")
	}
}
