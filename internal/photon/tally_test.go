package photon

import (
	"math"
	"testing"

	"repro/internal/baselines"
)

func TestGridMatchesScalarTallies(t *testing.T) {
	// The grid version must reproduce the scalar tallies exactly for
	// the same seed (same draws, extra bookkeeping only).
	tissue := ThreeLayerSkin()
	a, err := Simulate(tissue, 5000, baselines.NewSplitMix64(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateGrid(tissue, 5000, baselines.NewSplitMix64(42),
		TallyConfig{DR: 0.01, NR: 50, DZ: 0.01, NZ: 80})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Rd-b.Rd) > 1e-12 || math.Abs(a.Tt-b.Tt) > 1e-12 {
		t.Errorf("Rd/Tt diverge: %g/%g vs %g/%g", a.Rd, a.Tt, b.Rd, b.Tt)
	}
	if a.TotalSteps != b.TotalSteps {
		t.Errorf("step counts diverge: %d vs %d", a.TotalSteps, b.TotalSteps)
	}
	for i := range a.Absorbed {
		if math.Abs(a.Absorbed[i]-b.Absorbed[i]) > 1e-12 {
			t.Errorf("layer %d absorption diverges", i)
		}
	}
}

func TestGridTalliesAccountForAllWeight(t *testing.T) {
	tissue := ThreeLayerSkin()
	cfg := TallyConfig{DR: 0.02, NR: 60, DZ: 0.005, NZ: 200}
	gr, err := SimulateGrid(tissue, 10000, baselines.NewSplitMix64(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Σ RdR·ringArea must equal Rd.
	var rd float64
	for i, v := range gr.RdR {
		r := (float64(i) + 0.5) * cfg.DR
		rd += v * 2 * math.Pi * r * cfg.DR
	}
	if math.Abs(rd-gr.Rd) > 1e-9 {
		t.Errorf("Σ RdR = %g, Rd = %g", rd, gr.Rd)
	}
	// Σ AZ·dz must equal ΣA over layers.
	var az, al float64
	for _, v := range gr.AZ {
		az += v * cfg.DZ
	}
	for _, v := range gr.Absorbed {
		al += v
	}
	// Pathological max-step deposits bypass the z grid; tolerance
	// covers them.
	if math.Abs(az-al) > 0.01 {
		t.Errorf("Σ AZ = %g, ΣA = %g", az, al)
	}
}

func TestGridRdFallsWithRadius(t *testing.T) {
	// Rd(r) must be a decreasing-ish profile: the innermost rings
	// carry far more per-area weight than the outer ones.
	tissue := ThreeLayerSkin()
	cfg := TallyConfig{DR: 0.01, NR: 40, DZ: 0.01, NZ: 80}
	gr, err := SimulateGrid(tissue, 20000, baselines.NewSplitMix64(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gr.RdR[0] <= gr.RdR[20] {
		t.Errorf("Rd(r) not peaked at the beam: RdR[0]=%g RdR[20]=%g", gr.RdR[0], gr.RdR[20])
	}
}

func TestGridAZPeaksNearSurfaceForAbsorbingTopLayer(t *testing.T) {
	// The three-layer skin has a strongly absorbing thin epidermis:
	// absorption density near z=0 must exceed the deep tail.
	tissue := ThreeLayerSkin()
	cfg := TallyConfig{DR: 0.05, NR: 20, DZ: 0.002, NZ: 300}
	gr, err := SimulateGrid(tissue, 20000, baselines.NewSplitMix64(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gr.AZ[0] <= gr.AZ[250] {
		t.Errorf("A(z) should peak near the surface: AZ[0]=%g AZ[250]=%g", gr.AZ[0], gr.AZ[250])
	}
}

func TestBeerLambertLimit(t *testing.T) {
	// Pure absorber (µs ≈ 0), matched boundaries: the simulated
	// transmittance must match exp(−µa·d) closely. (µs must be tiny
	// but non-zero to keep the layer valid; its effect is second
	// order.)
	tissue, err := NewTissue(1, 1, []Layer{{Mua: 2.0, Mus: 1e-9, G: 0, N: 1, Thickness: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := BeerLambertTransmittance(tissue) // e^{-1} ≈ 0.3679
	res, err := Simulate(tissue, 100000, baselines.NewSplitMix64(13))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Tt-want) > 0.01 {
		t.Errorf("Tt = %.4f, Beer–Lambert = %.4f", res.Tt, want)
	}
	if math.Abs(want-math.Exp(-1)) > 1e-6 {
		t.Errorf("analytic helper wrong: %g", want)
	}
}

func TestGridValidation(t *testing.T) {
	tissue := ThreeLayerSkin()
	if _, err := SimulateGrid(tissue, 0, baselines.NewSplitMix64(1), TallyConfig{DR: 1, NR: 1, DZ: 1, NZ: 1}); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := SimulateGrid(tissue, 10, baselines.NewSplitMix64(1), TallyConfig{}); err == nil {
		t.Error("zero grid should fail")
	}
}
