package testu01

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
)

// birthdaySpacings is smarsa_BirthdaySpacings: m birthdays in 2^24
// days, duplicate spacings ~ Poisson(2); the count distribution over
// `samples` repetitions is chi-squared against the Poisson law.
func birthdaySpacings(src rng.Source, samples int) ([]float64, error) {
	const (
		m    = 512
		days = 1 << 24
	)
	lambda := float64(m) * float64(m) * float64(m) / (4 * float64(days))
	counts := make([]float64, 12)
	bdays := make([]uint32, m)
	spac := make([]uint32, m)
	for s := 0; s < samples; s++ {
		for i := range bdays {
			bdays[i] = uint32(src.Uint64() >> 40)
		}
		sort.Slice(bdays, func(a, b int) bool { return bdays[a] < bdays[b] })
		spac[0] = bdays[0]
		for i := 1; i < m; i++ {
			spac[i] = bdays[i] - bdays[i-1]
		}
		sort.Slice(spac, func(a, b int) bool { return spac[a] < spac[b] })
		j := 0
		for i := 1; i < m; i++ {
			if spac[i] == spac[i-1] {
				j++
			}
		}
		if j >= len(counts) {
			j = len(counts) - 1
		}
		counts[j]++
	}
	expected := make([]float64, len(counts))
	cum := 0.0
	for k := 0; k < len(expected)-1; k++ {
		pk := stats.PoissonPMF(lambda, k)
		expected[k] = pk * float64(samples)
		cum += pk
	}
	expected[len(expected)-1] = (1 - cum) * float64(samples)
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// matrixRank is smarsa_MatrixRank: dim×dim binary matrices filled
// from the bit stream, ranks compared to the exact GF(2) law. For
// GF(2)-linear generators whose state is smaller than dim² bits the
// rows become linearly dependent and the test fails — the classic
// killer of LFSR-family generators at Crush sizes.
func matrixRank(src rng.Source, dim, n int) ([]float64, error) {
	if dim < 2 {
		return nil, fmt.Errorf("testu01: matrix rank dim %d < 2", dim)
	}
	words := (dim + 63) / 64
	floor := dim - 3
	ncells := dim - floor + 2
	counts := make([]float64, ncells)
	rows := make([][]uint64, dim)
	for i := range rows {
		rows[i] = make([]uint64, words)
	}
	for t := 0; t < n; t++ {
		for i := range rows {
			for w := 0; w < words; w++ {
				rows[i][w] = src.Uint64()
			}
			// Mask tail bits beyond dim.
			if dim%64 != 0 {
				rows[i][words-1] &= uint64(1)<<(dim%64) - 1
			}
		}
		r := stats.GF2Rank(rows, dim)
		cell := r - floor + 1
		if cell < 0 {
			cell = 0
		}
		counts[cell]++
	}
	expected := make([]float64, ncells)
	for r := 0; r <= dim; r++ {
		cell := r - floor + 1
		if cell < 0 {
			cell = 0
		}
		expected[cell] += stats.GF2RankProb(dim, dim, r) * float64(n)
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// weightDistrib is svaria_WeightDistrib: among k uniforms, the
// number below p is Binomial(k, p); counts over n repetitions are
// chi-squared against the binomial law.
func weightDistrib(src rng.Source, k int, p float64, n int) ([]float64, error) {
	if k < 2 || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("testu01: weight distrib bad params k=%d p=%g", k, p)
	}
	counts := make([]float64, k+1)
	for i := 0; i < n; i++ {
		w := 0
		for j := 0; j < k; j++ {
			if rng.Float64(src) < p {
				w++
			}
		}
		counts[w]++
	}
	expected := make([]float64, k+1)
	for w := 0; w <= k; w++ {
		expected[w] = math.Exp(stats.BinomialLogPMF(k, w, p)) * float64(n)
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}
