package testu01

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"repro/internal/rng"
	"repro/internal/stats"
)

// guardWords pads the packed sequence below index 0 so the windowed
// discrepancy fetch never bounds-checks.
const guardWords = 2

// bitSeq is a bit sequence packed LSB-first into 64-bit words with
// two guard words of zeros in front.
type bitSeq struct {
	words []uint64
	n     int
}

func newBitSeq(n int) *bitSeq {
	return &bitSeq{words: make([]uint64, guardWords+(n+63)/64+1), n: n}
}

func (b *bitSeq) set(j int, v uint64) {
	if v&1 == 1 {
		b.words[guardWords+j/64] |= 1 << (j % 64)
	}
}

// fetch64 returns the natural-order 64-bit window whose bit t is
// sequence bit start+t; start may be as low as −128.
func (b *bitSeq) fetch64(start int) uint64 {
	idx := start + guardWords*64
	w, off := idx/64, uint(idx%64)
	lo := b.words[w] >> off
	if off == 0 {
		return lo
	}
	return lo | b.words[w+1]<<(64-off)
}

// berlekampMassey returns the linear complexity of the first n bits
// of s and the number of complexity jumps along the way, using a
// word-packed implementation: the per-step discrepancy is a
// 64-bit-parallel dot product between the connection polynomial and
// the bit-reversed trailing window of the sequence. For random bits
// the jump count is approximately N(n/4, n/8) (empirically
// recalibrated; see the package tests).
func berlekampMassey(s *bitSeq, n int) (complexity, jumps int) {
	words := n/64 + 2
	c := make([]uint64, words)
	bpoly := make([]uint64, words)
	c[0], bpoly[0] = 1, 1
	L, m := 0, 1
	tmp := make([]uint64, words)
	for i := 0; i < n; i++ {
		// d = Σ_{k=0}^{L} c_k · s_{i−k}  (c_0 = 1).
		var acc uint64
		cw := L/64 + 1
		for w := 0; w < cw; w++ {
			win := s.fetch64(i - 64*w - 63)
			acc ^= c[w] & bits.Reverse64(win)
		}
		if bits.OnesCount64(acc)%2 == 1 {
			// c ^= bpoly << m
			copy(tmp, c)
			wShift, bShift := m/64, uint(m%64)
			top := (L+m)/64 + 1
			if top >= words {
				top = words - 1
			}
			for w := 0; w+wShift < words; w++ {
				v := bpoly[w]
				if v == 0 {
					continue
				}
				c[w+wShift] ^= v << bShift
				if bShift != 0 && w+wShift+1 < words {
					c[w+wShift+1] ^= v >> (64 - bShift)
				}
			}
			if 2*L <= i {
				L = i + 1 - L
				jumps++
				copy(bpoly, tmp)
				m = 1
			} else {
				m++
			}
		} else {
			m++
		}
	}
	return L, jumps
}

// nistLCProbs are the NIST SP 800-22 linear-complexity cell
// probabilities for T ≤ −2.5, …, T > 2.5.
var nistLCProbs = []float64{0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833}

// linearComplexity runs Berlekamp–Massey on `blocks` sequences of
// `nbits` bits — one designated bit (the top bit of each 32-bit
// lane) per generator output, exactly like TestU01's scomp_LinearComp
// with s = 1 — and chi-squares the NIST T statistic against its law.
// GF(2)-linear generators whose per-lane bit streams obey a linear
// recurrence of degree < nbits/2 lock at their true degree, sending
// every T to the extreme cell: the TestU01 Crush/BigCrush failure
// mode of the Mersenne Twister (nbits must exceed twice the
// generator's state bits to expose it; Crush uses 44000 > 2·19937).
func linearComplexity(src rng.Source, nbits, blocks int) ([]float64, error) {
	if nbits < 128 {
		return nil, fmt.Errorf("testu01: linear complexity needs ≥ 128 bits, got %d", nbits)
	}
	mu := float64(nbits)/2 + (9+math.Pow(-1, float64(nbits+1)))/36
	sign := 1.0
	if nbits%2 == 1 {
		sign = -1
	}
	lane := rng.Lanes32(src)
	counts := make([]float64, 7)
	var jumpPs []float64
	sigmaJ := math.Sqrt(float64(nbits) / 8)
	for b := 0; b < blocks; b++ {
		seq := newBitSeq(nbits)
		for j := 0; j < nbits; j++ {
			seq.set(j, uint64(lane()>>31))
		}
		L, jumps := berlekampMassey(seq, nbits)
		T := sign*(float64(L)-mu) + 2.0/9
		cell := int(math.Floor(T+2.5)) + 1
		if cell < 0 {
			cell = 0
		}
		if cell > 6 {
			cell = 6
		}
		counts[cell]++
		// Jump-count statistic: smooth and normal, so a generator
		// that locks below nbits/2 fails catastrophically here even
		// with few blocks (the cell chi-square needs many blocks to
		// resolve its extreme cells).
		zJ := (float64(jumps) - float64(nbits)/4) / sigmaJ
		jumpPs = append(jumpPs, stats.NormalCDF(zJ))
	}
	expected := make([]float64, 7)
	for i, p := range nistLCProbs {
		expected[i] = p * float64(blocks)
	}
	res, err := stats.ChiSquare(counts, expected, 2, 0)
	if err != nil {
		return nil, err
	}
	return append([]float64{res.P}, jumpPs...), nil
}

// fft performs an in-place radix-2 Cooley–Tukey FFT; len(a) must be
// a power of two.
func fft(a []complex128) {
	n := len(a)
	if n&(n-1) != 0 {
		panic("testu01: fft length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// spectralDFT is the NIST discrete-Fourier-transform test: the
// fraction of DFT peaks of a ±1 sequence below the 95% threshold
// must be ≈ 0.95 (sspectral_Fourier3 flavour). One p-value per
// repetition.
func spectralDFT(src rng.Source, nbits, reps int) ([]float64, error) {
	if nbits < 64 || nbits&(nbits-1) != 0 {
		return nil, fmt.Errorf("testu01: spectral size %d must be a power of two ≥ 64", nbits)
	}
	br := rng.NewBitReader(src)
	threshold := math.Sqrt(math.Log(1/0.05) * float64(nbits))
	var ps []float64
	a := make([]complex128, nbits)
	for r := 0; r < reps; r++ {
		for i := 0; i < nbits; i++ {
			if br.Bit() == 1 {
				a[i] = 1
			} else {
				a[i] = -1
			}
		}
		fft(a)
		below := 0
		for j := 0; j < nbits/2; j++ {
			if cmplx.Abs(a[j]) < threshold {
				below++
			}
		}
		n0 := 0.95 * float64(nbits) / 2
		d := (float64(below) - n0) / math.Sqrt(float64(nbits)*0.95*0.05/4)
		ps = append(ps, stats.NormalCDF(d))
	}
	return ps, nil
}
