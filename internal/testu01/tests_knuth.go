package testu01

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/stats"
)

// collision throws `balls` balls into `urns` urns and counts
// collisions (balls − distinct urns hit); the count is compared to
// its exact mean with a Poisson-width z-score, repeated `reps`
// times (sknuth_Collision).
func collision(src rng.Source, balls, urns, reps int) ([]float64, error) {
	if balls < 2 || urns < 2 || balls > urns {
		return nil, fmt.Errorf("testu01: collision wants 2 ≤ balls ≤ urns, got %d/%d", balls, urns)
	}
	// Exact mean: balls − urns·(1 − (1−1/urns)^balls).
	mean := float64(balls) - float64(urns)*(1-math.Pow(1-1/float64(urns), float64(balls)))
	sd := math.Sqrt(mean)
	seen := make([]uint64, (urns+63)/64)
	var ps []float64
	for r := 0; r < reps; r++ {
		for i := range seen {
			seen[i] = 0
		}
		distinct := 0
		for b := 0; b < balls; b++ {
			u := rng.Uint64n(src, uint64(urns))
			if seen[u>>6]>>(u&63)&1 == 0 {
				seen[u>>6] |= 1 << (u & 63)
				distinct++
			}
		}
		c := float64(balls - distinct)
		ps = append(ps, stats.NormalCDF((c-mean)/sd))
	}
	return ps, nil
}

// gap measures the gaps between successive visits of U to [α, β):
// gap lengths are geometric with p = β − α (sknuth_Gap).
func gap(src rng.Source, alpha, beta float64, gaps int) ([]float64, error) {
	p := beta - alpha
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("testu01: gap window [%g, %g) invalid", alpha, beta)
	}
	const maxGap = 32 // cells 0..31, tail pooled
	counts := make([]float64, maxGap+1)
	run := 0
	collected := 0
	for collected < gaps {
		u := rng.Float64(src)
		if u >= alpha && u < beta {
			g := run
			if g > maxGap {
				g = maxGap
			}
			counts[g]++
			run = 0
			collected++
		} else {
			run++
		}
	}
	expected := make([]float64, maxGap+1)
	cum := 0.0
	for g := 0; g < maxGap; g++ {
		pg := p * math.Pow(1-p, float64(g))
		expected[g] = pg * float64(gaps)
		cum += pg
	}
	expected[maxGap] = (1 - cum) * float64(gaps)
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// stirling2 returns a table of Stirling numbers of the second kind
// S(n, k) for n ≤ maxN, as float64 (exact for the sizes used here).
func stirling2(maxN int) [][]float64 {
	s := make([][]float64, maxN+1)
	for n := range s {
		s[n] = make([]float64, maxN+1)
	}
	s[0][0] = 1
	for n := 1; n <= maxN; n++ {
		for k := 1; k <= n; k++ {
			s[n][k] = float64(k)*s[n-1][k] + s[n-1][k-1]
		}
	}
	return s
}

// simplePoker deals `hands` hands of 5 values in [0, d) and counts
// the number of distinct values per hand; the law is
// P(r) = S(5, r) · d!/(d−r)! / d^5 (sknuth_SimpPoker).
func simplePoker(src rng.Source, d int, hands int) ([]float64, error) {
	if d < 2 {
		return nil, fmt.Errorf("testu01: poker needs d ≥ 2, got %d", d)
	}
	s2 := stirling2(5)
	counts := make([]float64, 6) // distinct = 1..5 at indices 1..5
	seen := make(map[uint64]bool, 5)
	for h := 0; h < hands; h++ {
		for k := range seen {
			delete(seen, k)
		}
		for c := 0; c < 5; c++ {
			seen[rng.Uint64n(src, uint64(d))] = true
		}
		counts[len(seen)]++
	}
	expected := make([]float64, 6)
	df := float64(d)
	for r := 1; r <= 5; r++ {
		// d·(d−1)···(d−r+1)
		fall := 1.0
		for i := 0; i < r; i++ {
			fall *= df - float64(i)
		}
		expected[r] = s2[5][r] * fall / math.Pow(df, 5) * float64(hands)
	}
	res, err := stats.ChiSquare(counts[1:], expected[1:], 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// couponCollector draws values in [0, d) until all d have appeared
// and records the segment length; the law is
// P(L = l) = d!/d^l · S(l−1, d−1) (sknuth_CouponCollector).
func couponCollector(src rng.Source, d int, segments int) ([]float64, error) {
	if d < 2 || d > 16 {
		return nil, fmt.Errorf("testu01: coupon collector wants 2 ≤ d ≤ 16, got %d", d)
	}
	maxL := 8 * d // tail pooled
	s2 := stirling2(maxL)
	counts := make([]float64, maxL+1)
	for s := 0; s < segments; s++ {
		var mask uint64
		full := uint64(1)<<d - 1
		l := 0
		for mask != full {
			mask |= 1 << rng.Uint64n(src, uint64(d))
			l++
			if l >= maxL {
				break
			}
		}
		counts[l]++
	}
	expected := make([]float64, maxL+1)
	dFact := 1.0
	for i := 2; i <= d; i++ {
		dFact *= float64(i)
	}
	cum := 0.0
	for l := d; l < maxL; l++ {
		pl := dFact / math.Pow(float64(d), float64(l)) * s2[l-1][d-1]
		expected[l] = pl * float64(segments)
		cum += pl
	}
	expected[maxL] = (1 - cum) * float64(segments)
	res, err := stats.ChiSquare(counts[d:], expected[d:], 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// maxOfT takes the maximum of t uniforms; x^t is then uniform. A
// chi-square over equiprobable bins and a KS test are both applied
// (sknuth_MaxOft).
func maxOfT(src rng.Source, t int, n int) ([]float64, error) {
	if t < 2 {
		return nil, fmt.Errorf("testu01: max-of-t needs t ≥ 2, got %d", t)
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		m := 0.0
		for j := 0; j < t; j++ {
			if u := rng.Float64(src); u > m {
				m = u
			}
		}
		vals[i] = math.Pow(m, float64(t))
	}
	chi, err := stats.ChiSquareUniformBins(vals, 32)
	if err != nil {
		return nil, err
	}
	ks, err := stats.KSUniform(vals)
	if err != nil {
		return nil, err
	}
	return []float64{chi.P, ks.P}, nil
}

// serialPairs tests non-overlapping pairs of digits in [0, d) for
// uniformity over the d² cells (sknuth_Serial flavour).
func serialPairs(src rng.Source, d int, pairs int) ([]float64, error) {
	if d < 2 || d > 256 {
		return nil, fmt.Errorf("testu01: serial wants 2 ≤ d ≤ 256, got %d", d)
	}
	counts := make([]float64, d*d)
	for i := 0; i < pairs; i++ {
		a := int(rng.Uint64n(src, uint64(d)))
		b := int(rng.Uint64n(src, uint64(d)))
		counts[a*d+b]++
	}
	expected := make([]float64, d*d)
	e := float64(pairs) / float64(d*d)
	for i := range expected {
		expected[i] = e
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}
