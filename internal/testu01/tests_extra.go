package testu01

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/rng"
	"repro/internal/stats"
)

// autocorrelation XORs the bit stream with itself at the given lag
// and z-tests the ones count against Binomial(n, ½)
// (sstring_AutoCor flavour). Periodic or sluggish generators light
// up at their characteristic lags.
func autocorrelation(src rng.Source, lag, nbits int) ([]float64, error) {
	if lag < 1 || nbits < 64 {
		return nil, fmt.Errorf("testu01: autocorrelation lag=%d nbits=%d invalid", lag, nbits)
	}
	br := rng.NewBitReader(src)
	// Ring buffer of the last `lag` bits.
	ring := make([]uint64, lag)
	for i := range ring {
		ring[i] = br.Bit()
	}
	ones := 0
	for i := 0; i < nbits; i++ {
		b := br.Bit()
		if b^ring[i%lag] == 1 {
			ones++
		}
		ring[i%lag] = b
	}
	mean := float64(nbits) / 2
	sd := math.Sqrt(float64(nbits) / 4)
	return []float64{stats.NormalCDF((float64(ones) - mean) / sd)}, nil
}

// sumCollector draws uniforms until their sum exceeds 1 and records
// how many draws were needed. The law is exact:
// P(N > n) = P(U₁+…+Uₙ ≤ 1) = 1/n!, so P(N = n) = (n−1)/n!
// (svaria_SumCollector with threshold 1 — the classic "e by
// simulation" distribution, E[N] = e).
func sumCollector(src rng.Source, segments int) ([]float64, error) {
	if segments < 100 {
		return nil, fmt.Errorf("testu01: sum collector needs ≥ 100 segments, got %d", segments)
	}
	const maxN = 12 // tail pooled; P(N > 12) = 1/12! ≈ 2e-9
	counts := make([]float64, maxN+1)
	for s := 0; s < segments; s++ {
		sum := 0.0
		n := 0
		for sum <= 1 && n < maxN {
			sum += rng.Float64(src)
			n++
		}
		counts[n]++
	}
	expected := make([]float64, maxN+1)
	f := make([]float64, maxN+1) // factorials
	f[0] = 1
	for i := 1; i <= maxN; i++ {
		f[i] = f[i-1] * float64(i)
	}
	cum := 0.0
	for n := 2; n < maxN; n++ {
		p := float64(n-1) / f[n]
		expected[n] = p * float64(segments)
		cum += p
	}
	expected[maxN] = (1 - cum) * float64(segments)
	res, err := stats.ChiSquare(counts[2:], expected[2:], 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// hammingCorrelation z-tests the covariance of successive
// non-overlapping word weights; independent weights have correlation
// 0 with variance 1/n for the normalised statistic
// (sstring_HammingCorr flavour).
func hammingCorrelation(src rng.Source, words int) ([]float64, error) {
	if words < 100 {
		return nil, fmt.Errorf("testu01: hamming correlation needs ≥ 100 words, got %d", words)
	}
	// Weight of a 64-bit word: mean 32, variance 16.
	prev := bits.OnesCount64(src.Uint64())
	var acc float64
	for i := 1; i < words; i++ {
		cur := bits.OnesCount64(src.Uint64())
		acc += (float64(prev) - 32) * (float64(cur) - 32)
		prev = cur
	}
	n := float64(words - 1)
	// Var of each product term is 16·16 = 256.
	z := acc / math.Sqrt(n*256)
	return []float64{stats.NormalCDF(z)}, nil
}

// Extended returns the supplementary battery: tests beyond the
// paper's 15-test reporting, useful for deeper quality work
// (autocorrelation at several lags, the sum-collector law, Hamming
// correlation, bit-run lengths, the walk-maximum reflection law,
// 4-permutations and Knuth's serial correlation).
func Extended() Battery {
	return Battery{Name: "Extended", Tests: []Test{
		{"autocorrelation-lag1", func(s rng.Source) ([]float64, error) { return autocorrelation(s, 1, 1<<20) }},
		{"autocorrelation-lag2", func(s rng.Source) ([]float64, error) { return autocorrelation(s, 2, 1<<20) }},
		{"autocorrelation-lag32", func(s rng.Source) ([]float64, error) { return autocorrelation(s, 32, 1<<20) }},
		{"sum-collector", func(s rng.Source) ([]float64, error) { return sumCollector(s, 100000) }},
		{"hamming-correlation", func(s rng.Source) ([]float64, error) { return hammingCorrelation(s, 500000) }},
		{"bit-run-lengths", func(s rng.Source) ([]float64, error) { return bitRunLengths(s, 200000) }},
		{"random-walk-max", func(s rng.Source) ([]float64, error) { return randomWalkM(s, 64, 50000) }},
		{"permutation-4", func(s rng.Source) ([]float64, error) { return permutation4(s, 120000) }},
		{"serial-correlation", func(s rng.Source) ([]float64, error) { return serialCorrelation(s, 500000) }},
	}}
}
