// Package testu01 implements three test batteries modelled on
// L'Ecuyer and Simard's TestU01 SmallCrush / Crush / BigCrush: the
// same battery structure (15 named tests each, growing sample
// sizes), a representative selection of the TestU01 test families
// (Knuth's classics, Marsaglia's matrix rank and birthday spacings,
// string/Hamming tests, random walks, Berlekamp–Massey linear
// complexity and a spectral DFT test), and the same pass/fail
// reporting the paper's Table III uses.
//
// Sample sizes are scaled to laptop budgets: SmallCrush runs in
// well under a second, Crush in seconds, BigCrush in tens of
// seconds. The quality ordering the paper reports (everything passes
// SmallCrush; long-period linear generators lose the linear-
// complexity family at Crush/BigCrush sizes) is preserved, because
// the discriminating tests grow faster than the others.
package testu01

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Test is one battery entry: a named statistical test bound to its
// battery-specific parameters.
type Test struct {
	Name string
	Run  func(src rng.Source) ([]float64, error)
}

// Result is the outcome of one test.
type Result struct {
	Name    string
	PValues []float64
	Err     error
}

// extremeP mirrors TestU01's "clear failure" threshold: TestU01
// flags p-values outside [1e-10, 1-1e-10] as unambiguous failures
// and [1e-4, 1e-1] as suspect; we fail a test when any p-value
// leaves [1e-4, 1-1e-4] or the combined value leaves the band.
const extremeP = 1e-4

// P returns the decision p-value (KS-combined for multi-value
// tests).
func (r Result) P() float64 {
	switch len(r.PValues) {
	case 0:
		return 0
	case 1:
		return r.PValues[0]
	default:
		ks, err := stats.KSUniform(r.PValues)
		if err != nil {
			return 0
		}
		return ks.P
	}
}

// Passed applies the decision rule with the given band.
func (r Result) Passed(lo, hi float64) bool {
	if r.Err != nil {
		return false
	}
	for _, p := range r.PValues {
		if p < extremeP || p > 1-extremeP {
			return false
		}
	}
	p := r.P()
	return p >= lo && p <= hi
}

// Outcome is a battery run.
type Outcome struct {
	Battery   string
	Generator string
	Results   []Result
	Passed    int
	Total     int
}

func (o Outcome) String() string {
	return fmt.Sprintf("%s on %s: %d/%d passed", o.Battery, o.Generator, o.Passed, o.Total)
}

// Battery is a named list of tests.
type Battery struct {
	Name  string
	Tests []Test
}

// Run executes the battery against src with the paper's pass band.
func (b Battery) Run(generator string, src rng.Source) Outcome {
	out := Outcome{Battery: b.Name, Generator: generator, Total: len(b.Tests)}
	for _, t := range b.Tests {
		ps, err := t.Run(src)
		res := Result{Name: t.Name, PValues: ps, Err: err}
		if res.Passed(0.001, 0.999) {
			out.Passed++
		}
		out.Results = append(out.Results, res)
	}
	return out
}

// RunInterleaved executes the battery against the round-robin
// interleaving of srcs — the multi-source adapter the cross-stream
// battery feeds stream ensembles through (see
// diehard.RunBatteryInterleaved for the rationale).
func (b Battery) RunInterleaved(generator string, srcs []rng.Source) Outcome {
	return b.Run(generator, rng.Interleave(srcs...))
}

// sizes parameterises one battery's sample scales.
type sizes struct {
	rep        int // generic repetition multiplier
	collBalls  int
	gapCount   int
	pokerHands int
	couponSegs int
	maxOftN    int
	serialN    int
	weightN    int
	rankDim    int
	rankN      int
	hammingN   int
	walkN      int
	runBlocks  int
	lcBits     int
	lcBlocks   int
	dftBits    int
	dftReps    int
	bdaySamp   int
}

func smallSizes() sizes {
	return sizes{
		rep: 1, collBalls: 1 << 13, gapCount: 5000, pokerHands: 20000,
		couponSegs: 5000, maxOftN: 20000, serialN: 50000, weightN: 3000,
		rankDim: 64, rankN: 500, hammingN: 50000, walkN: 10000,
		runBlocks: 5000, lcBits: 2000, lcBlocks: 12, dftBits: 1 << 10,
		dftReps: 8, bdaySamp: 100,
	}
}

func crushSizes() sizes {
	return sizes{
		rep: 4, collBalls: 1 << 15, gapCount: 30000, pokerHands: 120000,
		couponSegs: 30000, maxOftN: 120000, serialN: 400000, weightN: 20000,
		rankDim: 256, rankN: 200, hammingN: 400000, walkN: 60000,
		runBlocks: 30000, lcBits: 44000, lcBlocks: 16, dftBits: 1 << 12,
		dftReps: 16, bdaySamp: 400,
	}
}

func bigSizes() sizes {
	return sizes{
		rep: 16, collBalls: 1 << 16, gapCount: 100000, pokerHands: 400000,
		couponSegs: 100000, maxOftN: 400000, serialN: 1500000, weightN: 60000,
		rankDim: 320, rankN: 200, hammingN: 1500000, walkN: 200000,
		runBlocks: 100000, lcBits: 50048, lcBlocks: 20, dftBits: 1 << 13,
		dftReps: 32, bdaySamp: 1000,
	}
}

func batteryFrom(name string, z sizes) Battery {
	return Battery{Name: name, Tests: []Test{
		{"birthday-spacings", func(s rng.Source) ([]float64, error) { return birthdaySpacings(s, z.bdaySamp) }},
		{"collision", func(s rng.Source) ([]float64, error) { return collision(s, z.collBalls, 1<<20, 4*z.rep) }},
		{"gap", func(s rng.Source) ([]float64, error) { return gap(s, 0, 0.125, z.gapCount) }},
		{"simple-poker", func(s rng.Source) ([]float64, error) { return simplePoker(s, 64, z.pokerHands) }},
		{"coupon-collector", func(s rng.Source) ([]float64, error) { return couponCollector(s, 8, z.couponSegs) }},
		{"max-of-t", func(s rng.Source) ([]float64, error) { return maxOfT(s, 8, z.maxOftN) }},
		{"serial-pairs", func(s rng.Source) ([]float64, error) { return serialPairs(s, 64, z.serialN) }},
		{"weight-distrib", func(s rng.Source) ([]float64, error) { return weightDistrib(s, 256, 0.25, z.weightN) }},
		{"matrix-rank", func(s rng.Source) ([]float64, error) { return matrixRank(s, z.rankDim, z.rankN) }},
		{"hamming-weight", func(s rng.Source) ([]float64, error) { return hammingWeight(s, z.hammingN) }},
		{"hamming-indep", func(s rng.Source) ([]float64, error) { return hammingIndep(s, z.hammingN/2) }},
		{"random-walk", func(s rng.Source) ([]float64, error) { return randomWalkH(s, 128, z.walkN) }},
		{"longest-head-run", func(s rng.Source) ([]float64, error) { return longestHeadRun(s, 128, z.runBlocks) }},
		{"linear-complexity", func(s rng.Source) ([]float64, error) { return linearComplexity(s, z.lcBits, z.lcBlocks) }},
		{"spectral-dft", func(s rng.Source) ([]float64, error) { return spectralDFT(s, z.dftBits, z.dftReps) }},
	}}
}

// SmallCrush returns the smallest battery.
func SmallCrush() Battery { return batteryFrom("SmallCrush", smallSizes()) }

// Crush returns the medium battery. Its linear-complexity test uses
// sequences longer than twice the MT19937 state, which is what makes
// pure GF(2)-linear generators fail here and not in SmallCrush.
func Crush() Battery { return batteryFrom("Crush", crushSizes()) }

// BigCrush returns the largest battery.
func BigCrush() Battery { return batteryFrom("BigCrush", bigSizes()) }

// Batteries returns all three in size order.
func Batteries() []Battery {
	return []Battery{SmallCrush(), Crush(), BigCrush()}
}
