package testu01

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/rng"
	"repro/internal/stats"
)

// hammingWeight chi-squares the population counts of n 64-bit words
// against Binomial(64, ½) (sstring_HammingWeight flavour).
func hammingWeight(src rng.Source, n int) ([]float64, error) {
	counts := make([]float64, 65)
	for i := 0; i < n; i++ {
		counts[bits.OnesCount64(src.Uint64())]++
	}
	expected := make([]float64, 65)
	for w := 0; w <= 64; w++ {
		expected[w] = math.Exp(stats.BinomialLogPMF(64, w, 0.5)) * float64(n)
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// hammingIndep tests independence of the weight categories of
// successive non-overlapping words: a 3×3 contingency table (weight
// < 32, = 32, > 32) with theoretical marginals
// (sstring_HammingIndep flavour).
func hammingIndep(src rng.Source, pairs int) ([]float64, error) {
	cat := func(w int) int {
		switch {
		case w < 32:
			return 0
		case w == 32:
			return 1
		default:
			return 2
		}
	}
	var table [9]float64
	for i := 0; i < pairs; i++ {
		a := cat(bits.OnesCount64(src.Uint64()))
		b := cat(bits.OnesCount64(src.Uint64()))
		table[a*3+b]++
	}
	// Theoretical marginals from Binomial(64, ½).
	pEq := math.Exp(stats.BinomialLogPMF(64, 32, 0.5))
	pLo := (1 - pEq) / 2
	marg := [3]float64{pLo, pEq, pLo}
	obs := table[:]
	expected := make([]float64, 9)
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			expected[a*3+b] = marg[a] * marg[b] * float64(pairs)
		}
	}
	res, err := stats.ChiSquare(obs, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// randomWalkH runs n ±1 walks of length l and chi-squares the final
// position against the binomial law (swalk_RandomWalk1's H
// statistic).
func randomWalkH(src rng.Source, l, n int) ([]float64, error) {
	if l < 2 || l%2 != 0 {
		return nil, fmt.Errorf("testu01: walk length %d must be even and ≥ 2", l)
	}
	br := rng.NewBitReader(src)
	// Final position = 2·(#ones) − l; track #ones.
	counts := make([]float64, l+1)
	for i := 0; i < n; i++ {
		ones := 0
		for s := 0; s < l; s += 64 {
			w := br.Bits(64)
			ones += bits.OnesCount64(w)
		}
		counts[ones]++
	}
	expected := make([]float64, l+1)
	for k := 0; k <= l; k++ {
		expected[k] = math.Exp(stats.BinomialLogPMF(l, k, 0.5)) * float64(n)
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// longestRunProbs returns P(longest run of ones ≤ r) for a block of
// m fair bits, for r = 0..m, via the run-length DP.
func longestRunProbs(m int) []float64 {
	probs := make([]float64, m+1)
	for r := 0; r <= m; r++ {
		// DP over (position, current run), capped at r.
		cur := make([]float64, r+2)
		cur[0] = 1
		for pos := 0; pos < m; pos++ {
			next := make([]float64, r+2)
			for run := 0; run <= r; run++ {
				p := cur[run]
				if p == 0 {
					continue
				}
				next[0] += p / 2 // a zero resets the run
				if run+1 <= r {
					next[run+1] += p / 2
				}
				// a one extending past r kills the path
			}
			cur = next
		}
		total := 0.0
		for _, p := range cur {
			total += p
		}
		probs[r] = total
		if r > 0 && probs[r] > 1-1e-15 {
			for rr := r + 1; rr <= m; rr++ {
				probs[rr] = 1
			}
			break
		}
	}
	return probs
}

// longestHeadRun chi-squares the longest run of ones in blocks of m
// bits against the exact DP law (sstring_LongestHeadRun flavour).
func longestHeadRun(src rng.Source, m, blocks int) ([]float64, error) {
	if m < 8 || m%64 != 0 {
		return nil, fmt.Errorf("testu01: block size %d must be a positive multiple of 64", m)
	}
	cdf := longestRunProbs(m)
	pmf := make([]float64, len(cdf))
	pmf[0] = cdf[0]
	for r := 1; r < len(cdf); r++ {
		pmf[r] = cdf[r] - cdf[r-1]
	}
	counts := make([]float64, m+1)
	words := m / 64
	for b := 0; b < blocks; b++ {
		longest, run := 0, 0
		for w := 0; w < words; w++ {
			v := src.Uint64()
			for bit := 63; bit >= 0; bit-- {
				if v>>uint(bit)&1 == 1 {
					run++
					if run > longest {
						longest = run
					}
				} else {
					run = 0
				}
			}
		}
		counts[longest]++
	}
	expected := make([]float64, m+1)
	for r := 0; r <= m; r++ {
		expected[r] = pmf[r] * float64(blocks)
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}
