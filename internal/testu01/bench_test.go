package testu01

import (
	"testing"

	"repro/internal/baselines"
)

func BenchmarkBerlekampMassey(b *testing.B) {
	for _, n := range []int{2000, 8000, 44032} {
		b.Run(sizeName(n), func(b *testing.B) {
			src := baselines.NewSplitMix64(1)
			seq := newBitSeq(n)
			for j := 0; j < n; j += 64 {
				w := src.Uint64()
				for k := 0; k < 64 && j+k < n; k++ {
					seq.set(j+k, w>>uint(k))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				berlekampMassey(seq, n)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000:
		return itoa(n/1000) + "k-bits"
	default:
		return itoa(n) + "-bits"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkFFT4096(b *testing.B) {
	src := baselines.NewSplitMix64(2)
	a := make([]complex128, 4096)
	for i := range a {
		if src.Uint64()&1 == 1 {
			a[i] = 1
		} else {
			a[i] = -1
		}
	}
	work := make([]complex128, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, a)
		fft(work)
	}
}

func BenchmarkSmallCrush(b *testing.B) {
	battery := SmallCrush()
	for i := 0; i < b.N; i++ {
		out := battery.Run("splitmix64", baselines.NewSplitMix64(uint64(i)))
		if out.Total != 15 {
			b.Fatal("battery shrank")
		}
	}
}

func BenchmarkGF2RankViaMatrixTest(b *testing.B) {
	src := baselines.NewSplitMix64(3)
	for i := 0; i < b.N; i++ {
		// 20 matrices keep the chi-square cells populated enough to
		// evaluate; the rank computation dominates the cost.
		if _, err := matrixRank(src, 256, 20); err != nil {
			b.Fatal(err)
		}
	}
}
