package testu01

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/stats"
)

// bitRunLengths collects the lengths of maximal runs (of ones and of
// zeros) in the bit stream; run lengths are exactly Geometric(½):
// P(len = k) = 2^-k (sstring_Run flavour). One chi-square per bit
// value.
func bitRunLengths(src rng.Source, runs int) ([]float64, error) {
	if runs < 1000 {
		return nil, fmt.Errorf("testu01: bit runs needs ≥ 1000 runs, got %d", runs)
	}
	const maxLen = 16 // tail pooled
	br := rng.NewBitReader(src)
	counts := [2][]float64{make([]float64, maxLen+1), make([]float64, maxLen+1)}
	collected := 0
	cur := br.Bit()
	length := 1
	for collected < runs {
		b := br.Bit()
		if b == cur {
			length++
			continue
		}
		l := length
		if l > maxLen {
			l = maxLen
		}
		counts[cur][l]++
		collected++
		cur = b
		length = 1
	}
	var ps []float64
	for v := 0; v < 2; v++ {
		var total float64
		for _, c := range counts[v] {
			total += c
		}
		if total == 0 {
			continue
		}
		expected := make([]float64, maxLen+1)
		cum := 0.0
		for k := 1; k < maxLen; k++ {
			p := math.Exp2(-float64(k))
			expected[k] = p * total
			cum += p
		}
		expected[maxLen] = (1 - cum) * total
		res, err := stats.ChiSquare(counts[v][1:], expected[1:], 5, 0)
		if err != nil {
			return nil, err
		}
		ps = append(ps, res.P)
	}
	return ps, nil
}

// walkMaxProbs returns P(M = m) for the one-sided maximum
// M = max_i S_i of an l-step simple symmetric walk, via the
// reflection principle: P(M ≥ m) = P(S_l ≥ m) + P(S_l ≥ m+1).
func walkMaxProbs(l int) []float64 {
	// P(S_l ≥ s) with S_l = 2K − l, K ~ Binomial(l, ½):
	// S_l ≥ s ⇔ K ≥ ⌈(l+s)/2⌉.
	tail := func(s int) float64 {
		kMin := (l + s + 1) / 2
		if kMin < 0 {
			kMin = 0
		}
		if kMin > l {
			return 0
		}
		sum := 0.0
		for k := kMin; k <= l; k++ {
			sum += math.Exp(stats.BinomialLogPMF(l, k, 0.5))
		}
		return sum
	}
	probs := make([]float64, l+1)
	for m := 0; m <= l; m++ {
		geM := tail(m) + tail(m+1)
		geM1 := tail(m+1) + tail(m+2)
		probs[m] = geM - geM1
	}
	return probs
}

// randomWalkM chi-squares the one-sided maximum of n walks of length
// l against the exact reflection law (swalk_RandomWalk1's M
// statistic).
func randomWalkM(src rng.Source, l, n int) ([]float64, error) {
	if l < 4 || l > 512 {
		return nil, fmt.Errorf("testu01: walk-max length %d outside [4, 512]", l)
	}
	probs := walkMaxProbs(l)
	br := rng.NewBitReader(src)
	counts := make([]float64, l+1)
	for i := 0; i < n; i++ {
		pos, max := 0, 0
		for s := 0; s < l; s++ {
			if br.Bit() == 1 {
				pos++
				if pos > max {
					max = pos
				}
			} else {
				pos--
			}
		}
		counts[max]++
	}
	expected := make([]float64, l+1)
	for m := range expected {
		expected[m] = probs[m] * float64(n)
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// permutation4 tests the orderings of disjoint 4-tuples of 32-bit
// lanes: 24 equiprobable patterns (sknuth_Permutation with t = 4).
func permutation4(src rng.Source, tuples int) ([]float64, error) {
	if tuples < 1000 {
		return nil, fmt.Errorf("testu01: permutation needs ≥ 1000 tuples, got %d", tuples)
	}
	lane := rng.Lanes32(src)
	counts := make([]float64, 24)
	for t := 0; t < tuples; t++ {
		var v [4]uint32
		for i := range v {
			v[i] = lane()
		}
		// Lehmer index.
		idx := 0
		fact := [4]int{6, 2, 1, 1}
		for i := 0; i < 3; i++ {
			rank := 0
			for j := i + 1; j < 4; j++ {
				if v[j] < v[i] {
					rank++
				}
			}
			idx += rank * fact[i]
		}
		counts[idx]++
	}
	expected := make([]float64, 24)
	e := float64(tuples) / 24
	for i := range expected {
		expected[i] = e
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// serialCorrelation z-tests Knuth's lag-1 serial correlation of n
// uniforms: under H0 the coefficient is approximately
// N(−1/(n−1), 1/n).
func serialCorrelation(src rng.Source, n int) ([]float64, error) {
	if n < 1000 {
		return nil, fmt.Errorf("testu01: serial correlation needs ≥ 1000 values, got %d", n)
	}
	vals := make([]float64, n)
	var mean float64
	for i := range vals {
		vals[i] = rng.Float64(src)
		mean += vals[i]
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := vals[i] - mean
		den += d * d
		j := (i + 1) % n // circular, the classical definition
		num += d * (vals[j] - mean)
	}
	if den == 0 {
		return nil, fmt.Errorf("testu01: degenerate sample")
	}
	rho := num / den
	z := (rho + 1/float64(n-1)) * math.Sqrt(float64(n))
	return []float64{stats.NormalCDF(z)}, nil
}
