package testu01

import (
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/rng"
)

func TestAutocorrelationPassesGoodGenerator(t *testing.T) {
	ps, err := autocorrelation(baselines.NewMT19937_64(3), 1, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] < 0.001 || ps[0] > 0.999 {
		t.Errorf("autocorrelation p = %g on a good generator", ps[0])
	}
}

func TestAutocorrelationCatchesPeriodicStream(t *testing.T) {
	// A stream with period 2 in its bits: x ⊕ x_{lag=2} is all
	// zeros → z hugely negative → p ≈ 0.
	period2 := rng.Func(func() uint64 { return 0xAAAAAAAAAAAAAAAA })
	ps, err := autocorrelation(period2, 2, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] > 1e-10 {
		t.Errorf("lag-2 autocorrelation missed a period-2 stream: p = %g", ps[0])
	}
	// And at lag 1 the XOR is all ones → p ≈ 1.
	ps, err = autocorrelation(period2, 1, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] < 1-1e-10 {
		t.Errorf("lag-1 autocorrelation missed alternation: p = %g", ps[0])
	}
}

func TestSumCollectorLawIsExact(t *testing.T) {
	// The expected-counts law must be a probability distribution and
	// must give E[N] = e.
	const maxN = 12
	f := 1.0
	var total, mean float64
	for n := 2; n <= maxN; n++ {
		// recompute (n−1)/n!
		f = 1
		for i := 2; i <= n; i++ {
			f *= float64(i)
		}
		p := float64(n-1) / f
		total += p
		mean += float64(n) * p
	}
	if math.Abs(total-1) > 1e-7 {
		t.Errorf("sum-collector law sums to %g", total)
	}
	if math.Abs(mean-math.E) > 1e-5 {
		t.Errorf("E[N] = %g, want e", mean)
	}
}

func TestSumCollectorPassesGoodGenerator(t *testing.T) {
	ps, err := sumCollector(baselines.NewSplitMix64(8), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] < 0.001 || ps[0] > 0.999 {
		t.Errorf("sum-collector p = %g on a good generator", ps[0])
	}
}

func TestSumCollectorCatchesBiasedUniforms(t *testing.T) {
	// A generator whose floats concentrate near 1 finishes in ~2
	// draws almost always.
	biased := rng.Func(func() uint64 { return ^uint64(0) - 12345 })
	ps, err := sumCollector(biased, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] > 1e-10 && ps[0] < 1-1e-10 {
		t.Errorf("sum-collector missed a biased stream: p = %g", ps[0])
	}
}

func TestHammingCorrelationPassesGoodGenerator(t *testing.T) {
	ps, err := hammingCorrelation(baselines.NewMT19937_64(5), 200000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] < 0.001 || ps[0] > 0.999 {
		t.Errorf("hamming correlation p = %g on a good generator", ps[0])
	}
}

func TestHammingCorrelationCatchesStickyWeights(t *testing.T) {
	// Emit every random word twice: half of all adjacent pairs have
	// identical weights — strong positive correlation.
	inner := baselines.NewSplitMix64(1)
	var last uint64
	var have bool
	sticky := rng.Func(func() uint64 {
		if have {
			have = false
			return last
		}
		last = inner.Uint64()
		have = true
		return last
	})
	ps, err := hammingCorrelation(sticky, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] > 1e-10 && ps[0] < 1-1e-10 {
		t.Errorf("hamming correlation missed sticky weights: p = %g", ps[0])
	}
}

func TestExtraValidation(t *testing.T) {
	src := baselines.NewSplitMix64(1)
	if _, err := autocorrelation(src, 0, 1024); err == nil {
		t.Error("lag 0 should fail")
	}
	if _, err := autocorrelation(src, 1, 10); err == nil {
		t.Error("tiny nbits should fail")
	}
	if _, err := sumCollector(src, 10); err == nil {
		t.Error("tiny segments should fail")
	}
	if _, err := hammingCorrelation(src, 10); err == nil {
		t.Error("tiny words should fail")
	}
}

func TestExtendedBatteryOnHybridQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("battery run")
	}
	b := Extended()
	if len(b.Tests) != 9 {
		t.Fatalf("extended battery has %d tests, want 9", len(b.Tests))
	}
	out := b.Run("mt19937-64", baselines.NewMT19937_64(99))
	if out.Passed < 8 {
		for _, r := range out.Results {
			t.Logf("%s p=%.6f", r.Name, r.P())
		}
		t.Errorf("good generator passed only %d/%d extended tests", out.Passed, out.Total)
	}
}
