package testu01

import (
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/rng"
)

func TestBitRunLengthsGoodGenerator(t *testing.T) {
	ps, err := bitRunLengths(baselines.NewMT19937_64(11), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("got %d p-values, want one per bit value", len(ps))
	}
	for _, p := range ps {
		if p < 0.001 || p > 0.999 {
			t.Errorf("bit-run p = %g on a good generator", p)
		}
	}
}

func TestBitRunLengthsCatchesAlternation(t *testing.T) {
	alt := rng.Func(func() uint64 { return 0xAAAAAAAAAAAAAAAA })
	ps, err := bitRunLengths(alt, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Every run has length 1: the chi-square must explode.
	for _, p := range ps {
		if p < 1-1e-10 {
			t.Errorf("alternating stream p = %g, want ≈ 1", p)
		}
	}
}

func TestWalkMaxProbsSumToOne(t *testing.T) {
	for _, l := range []int{4, 16, 64} {
		probs := walkMaxProbs(l)
		sum := 0.0
		for m, p := range probs {
			if p < -1e-12 {
				t.Fatalf("l=%d: P(M=%d) = %g negative", l, m, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("l=%d: walk-max law sums to %g", l, sum)
		}
	}
	// Hand check l=2: paths ++, +-, -+, --; maxima 2, 1, 0, 0.
	p := walkMaxProbs(2)
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.25) > 1e-12 || math.Abs(p[2]-0.25) > 1e-12 {
		t.Errorf("l=2 law = %v, want [0.5 0.25 0.25]", p[:3])
	}
}

func TestRandomWalkMGoodGenerator(t *testing.T) {
	ps, err := randomWalkM(baselines.NewSplitMix64(12), 64, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] < 0.001 || ps[0] > 0.999 {
		t.Errorf("walk-max p = %g on a good generator", ps[0])
	}
}

func TestRandomWalkMCatchesBiasedBits(t *testing.T) {
	// 75% ones: maxima skew enormous.
	biased := rng.Func(func() uint64 { return 0xEEEEEEEEEEEEEEEE }) // 0b1110 pattern
	ps, err := randomWalkM(biased, 64, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] > 1e-10 && ps[0] < 1-1e-10 {
		t.Errorf("biased walk p = %g, want extreme", ps[0])
	}
}

func TestPermutation4GoodGenerator(t *testing.T) {
	ps, err := permutation4(baselines.NewMT19937_64(13), 24000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] < 0.001 || ps[0] > 0.999 {
		t.Errorf("permutation-4 p = %g on a good generator", ps[0])
	}
}

func TestPermutation4CatchesMonotone(t *testing.T) {
	// A counter in the high lane bits: every tuple is increasing.
	c := uint64(0)
	mono := rng.Func(func() uint64 { c += 1 << 33; return c })
	ps, err := permutation4(mono, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] > 1e-10 && ps[0] < 1-1e-10 {
		t.Errorf("monotone stream p = %g, want extreme", ps[0])
	}
}

func TestSerialCorrelationGoodGenerator(t *testing.T) {
	ps, err := serialCorrelation(baselines.NewSplitMix64(14), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] < 0.001 || ps[0] > 0.999 {
		t.Errorf("serial correlation p = %g on a good generator", ps[0])
	}
}

func TestSerialCorrelationCatchesTrend(t *testing.T) {
	// A slow sawtooth: adjacent values nearly equal → correlation ≈ 1.
	i := uint64(0)
	saw := rng.Func(func() uint64 { i += 1 << 44; return i })
	ps, err := serialCorrelation(saw, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] < 1-1e-10 {
		t.Errorf("sawtooth p = %g, want ≈ 1", ps[0])
	}
}

func TestExtra2Validation(t *testing.T) {
	src := baselines.NewSplitMix64(1)
	if _, err := bitRunLengths(src, 10); err == nil {
		t.Error("tiny runs should fail")
	}
	if _, err := randomWalkM(src, 2, 100); err == nil {
		t.Error("tiny walk should fail")
	}
	if _, err := randomWalkM(src, 1024, 100); err == nil {
		t.Error("huge walk should fail")
	}
	if _, err := permutation4(src, 10); err == nil {
		t.Error("tiny tuples should fail")
	}
	if _, err := serialCorrelation(src, 10); err == nil {
		t.Error("tiny sample should fail")
	}
}
