package testu01

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/baselines"
)

func TestBitSeqFetch(t *testing.T) {
	s := newBitSeq(200)
	// Set bits 0, 5, 64, 130.
	for _, j := range []int{0, 5, 64, 130} {
		s.set(j, 1)
	}
	if got := s.fetch64(0); got != 1|1<<5 {
		t.Errorf("fetch64(0) = %#x", got)
	}
	if got := s.fetch64(64); got != 1 {
		t.Errorf("fetch64(64) = %#x", got)
	}
	if got := s.fetch64(-64); got != 0 {
		t.Errorf("fetch64(-64) = %#x, guard must be zero", got)
	}
	// Unaligned: bit 5 appears at position 5-3 = 2 when starting at 3.
	if got := s.fetch64(3); got&0b100 == 0 {
		t.Errorf("fetch64(3) = %#x missing bit", got)
	}
	// Bit 130 at start 67 → position 63.
	if got := s.fetch64(67); got>>63 != 1 {
		t.Errorf("fetch64(67) = %#x", got)
	}
}

func mkSeq(bits []uint64) *bitSeq {
	s := newBitSeq(len(bits))
	for i, b := range bits {
		s.set(i, b)
	}
	return s
}

func TestBerlekampMasseyKnownSequences(t *testing.T) {
	// All zeros: complexity 0.
	if L, _ := berlekampMassey(mkSeq(make([]uint64, 64)), 64); L != 0 {
		t.Errorf("zeros L = %d, want 0", L)
	}
	// All ones: s_n = s_{n-1}, complexity 1.
	ones := make([]uint64, 64)
	for i := range ones {
		ones[i] = 1
	}
	if L, _ := berlekampMassey(mkSeq(ones), 64); L != 1 {
		t.Errorf("ones L = %d, want 1", L)
	}
	// Impulse: 1 followed by zeros, complexity 1.
	imp := make([]uint64, 64)
	imp[0] = 1
	if L, _ := berlekampMassey(mkSeq(imp), 64); L != 1 {
		t.Errorf("impulse L = %d, want 1", L)
	}
	// Alternating 1,0,1,0…: s_n = s_{n-2}, complexity 2.
	alt := make([]uint64, 64)
	for i := range alt {
		alt[i] = uint64(1 - i%2)
	}
	if L, _ := berlekampMassey(mkSeq(alt), 64); L != 2 {
		t.Errorf("alternating L = %d, want 2", L)
	}
	// x³ + x + 1 LFSR (maximal, period 7): complexity 3.
	reg := []uint64{1, 0, 0}
	var lfsr []uint64
	for i := 0; i < 70; i++ {
		out := reg[2]
		lfsr = append(lfsr, out)
		fb := reg[2] ^ reg[1] // taps for x^3 + x + 1
		reg[2], reg[1], reg[0] = reg[1], reg[0], fb
	}
	if L, jumps := berlekampMassey(mkSeq(lfsr), len(lfsr)); L != 3 || jumps == 0 {
		t.Errorf("LFSR-3 L = %d (jumps %d), want 3", L, jumps)
	}
}

func TestBerlekampMasseyRandomNearHalf(t *testing.T) {
	src := baselines.NewSplitMix64(42)
	n := 2048
	s := newBitSeq(n)
	for j := 0; j < n; j += 64 {
		w := src.Uint64()
		for k := 0; k < 64; k++ {
			s.set(j+k, w>>uint(k))
		}
	}
	L, jumps := berlekampMassey(s, n)
	if L < n/2-8 || L > n/2+8 {
		t.Errorf("random-sequence L = %d, want ≈ %d", L, n/2)
	}
	// Jump count ≈ n/4 with σ = √(n/8) ≈ 16.
	if jumps < n/4-80 || jumps > n/4+80 {
		t.Errorf("random-sequence jumps = %d, want ≈ %d", jumps, n/4)
	}
}

func TestBerlekampMasseyLocksOnMT19937(t *testing.T) {
	// The repo's marquee linearity result: over > 2·19937 bits,
	// Berlekamp–Massey pins MT19937's linear complexity at exactly
	// its state degree. This is precisely why MT fails Crush.
	if testing.Short() {
		t.Skip("44k-bit BM run")
	}
	// One designated bit per output: interleaving all 32 bits would
	// multiply the recurrence degree by the lane count (the
	// interleaved stream has complexity 32·19937) and hide the lock.
	g := baselines.NewMT19937(5489)
	n := 44032
	s := newBitSeq(n)
	for j := 0; j < n; j++ {
		s.set(j, uint64(g.Uint32()>>31))
	}
	L, _ := berlekampMassey(s, n)
	if L != 19937 {
		t.Errorf("MT19937 complexity = %d, want exactly 19937", L)
	}
}

func TestFFTMatchesDirectDFT(t *testing.T) {
	src := baselines.NewSplitMix64(7)
	n := 64
	a := make([]complex128, n)
	orig := make([]complex128, n)
	for i := range a {
		v := complex(float64(src.Uint64()%100)/50-1, 0)
		a[i], orig[i] = v, v
	}
	fft(a)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			want += orig[j] * cmplx.Exp(complex(0, ang))
		}
		if cmplx.Abs(a[k]-want) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, want %v", k, a[k], want)
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("fft should panic on non-power-of-two input")
		}
	}()
	fft(make([]complex128, 48))
}

func TestLongestRunProbs(t *testing.T) {
	// m=2: P(max run ≤ 0) = 1/4 (only 00), ≤ 1 = 3/4, ≤ 2 = 1.
	p := longestRunProbs(2)
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 || math.Abs(p[2]-1) > 1e-12 {
		t.Errorf("m=2 probs = %v", p[:3])
	}
	// Monotone CDF for larger m.
	p = longestRunProbs(128)
	for r := 1; r < len(p); r++ {
		if p[r] < p[r-1]-1e-12 {
			t.Fatalf("CDF not monotone at %d", r)
		}
	}
	if math.Abs(p[128]-1) > 1e-9 {
		t.Errorf("CDF(128) = %g", p[128])
	}
}

func TestStirlingNumbers(t *testing.T) {
	s := stirling2(6)
	// Known values: S(5,2)=15, S(5,3)=25, S(6,3)=90.
	if s[5][2] != 15 || s[5][3] != 25 || s[6][3] != 90 {
		t.Errorf("Stirling numbers wrong: %v %v %v", s[5][2], s[5][3], s[6][3])
	}
}

func TestParamValidation(t *testing.T) {
	src := baselines.NewSplitMix64(1)
	if _, err := collision(src, 1, 10, 1); err == nil {
		t.Error("collision with 1 ball should fail")
	}
	if _, err := gap(src, 0.5, 0.5, 10); err == nil {
		t.Error("empty gap window should fail")
	}
	if _, err := simplePoker(src, 1, 10); err == nil {
		t.Error("poker d=1 should fail")
	}
	if _, err := couponCollector(src, 1, 10); err == nil {
		t.Error("coupon d=1 should fail")
	}
	if _, err := maxOfT(src, 1, 10); err == nil {
		t.Error("max-of-t t=1 should fail")
	}
	if _, err := serialPairs(src, 1, 10); err == nil {
		t.Error("serial d=1 should fail")
	}
	if _, err := weightDistrib(src, 1, 0.5, 10); err == nil {
		t.Error("weight k=1 should fail")
	}
	if _, err := matrixRank(src, 1, 10); err == nil {
		t.Error("rank dim=1 should fail")
	}
	if _, err := randomWalkH(src, 3, 10); err == nil {
		t.Error("odd walk length should fail")
	}
	if _, err := longestHeadRun(src, 100, 10); err == nil {
		t.Error("non-multiple-of-64 block should fail")
	}
	if _, err := linearComplexity(src, 64, 4); err == nil {
		t.Error("tiny linear complexity should fail")
	}
	if _, err := spectralDFT(src, 100, 2); err == nil {
		t.Error("non-power-of-two dft should fail")
	}
}

func TestIndividualTestsOnGoodGenerator(t *testing.T) {
	z := smallSizes()
	b := batteryFrom("unit", z)
	src := baselines.NewMT19937_64(987654321)
	for _, test := range b.Tests {
		ps, err := test.Run(src)
		if err != nil {
			t.Fatalf("%s: %v", test.Name, err)
		}
		if len(ps) == 0 {
			t.Fatalf("%s produced no p-values", test.Name)
		}
		for _, p := range ps {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Errorf("%s produced p = %g", test.Name, p)
			}
		}
	}
}

func TestSmallCrushPassesGoodGenerators(t *testing.T) {
	if testing.Short() {
		t.Skip("battery run")
	}
	for _, name := range []string{"mt19937-64", "splitmix64", "xorwow"} {
		src, err := baselines.New(name, 777)
		if err != nil {
			t.Fatal(err)
		}
		out := SmallCrush().Run(name, src)
		if out.Passed < 14 {
			for _, r := range out.Results {
				t.Logf("%s %-20s p=%.6f", name, r.Name, r.P())
			}
			t.Errorf("%s passed %d/15 SmallCrush", name, out.Passed)
		}
	}
}

func TestSmallCrushFailsStuckBitGenerator(t *testing.T) {
	if testing.Short() {
		t.Skip("battery run")
	}
	src := baselines.NewGlibcRand32(1)
	out := SmallCrush().Run("glibc-rand32", src)
	if out.Passed > 10 {
		t.Errorf("stuck-top-bit generator passed %d/15 SmallCrush", out.Passed)
	}
}

func TestCrushCatchesMersenneTwisterLinearity(t *testing.T) {
	if testing.Short() {
		t.Skip("Crush-size linear complexity run")
	}
	ps, err := linearComplexity(baselines.NewMT19937(5489), crushSizes().lcBits, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := Result{Name: "lc", PValues: ps}
	if res.Passed(0.001, 0.999) {
		t.Errorf("MT19937 passed linear complexity at Crush size: %v", ps)
	}
	// The jump-count p-values (entries 1..) must be catastrophic.
	worst := 1.0
	for _, p := range ps[1:] {
		if p < worst {
			worst = p
		}
	}
	if worst > 1e-10 {
		t.Errorf("MT19937 worst jump p = %g, want ≈ 0", worst)
	}
	// A nonlinear generator sails through at the same size.
	ps, err = linearComplexity(baselines.NewSplitMix64(3), crushSizes().lcBits, 8)
	if err != nil {
		t.Fatal(err)
	}
	res = Result{Name: "lc", PValues: ps}
	if !res.Passed(0.001, 0.999) {
		t.Errorf("splitmix64 failed linear complexity: %v", ps)
	}
}

func TestBatteriesStructure(t *testing.T) {
	bats := Batteries()
	if len(bats) != 3 {
		t.Fatalf("got %d batteries", len(bats))
	}
	wantNames := []string{"SmallCrush", "Crush", "BigCrush"}
	for i, b := range bats {
		if b.Name != wantNames[i] {
			t.Errorf("battery %d = %s", i, b.Name)
		}
		if len(b.Tests) != 15 {
			t.Errorf("%s has %d tests, want 15", b.Name, len(b.Tests))
		}
	}
}

func TestResultDecisionRule(t *testing.T) {
	r := Result{PValues: []float64{0.5}}
	if !r.Passed(0.001, 0.999) {
		t.Error("0.5 should pass")
	}
	r = Result{PValues: []float64{0.5, 1e-6}}
	if r.Passed(0.001, 0.999) {
		t.Error("extreme member should fail the test")
	}
	r = Result{}
	if r.P() != 0 {
		t.Error("empty result p should be 0")
	}
}
