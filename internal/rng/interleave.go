package rng

// Interleaved serves words from a set of sources in strict round-robin
// order: word t comes from source t mod len(sources). It is the
// multi-source adapter the statistical batteries accept to judge an
// *ensemble* of streams as one composite stream — inter-stream
// structure that no per-stream battery can see (two aliased streams,
// lag-correlated neighbours, a common bad prefix) becomes ordinary
// serial structure of the interleaved stream, where the serial-pairs,
// birthday-spacings and autocorrelation-family tests catch it.
//
// Not safe for concurrent use, like every Source in this repository.
type Interleaved struct {
	srcs []Source
	next int
}

// Interleave builds the round-robin composite of srcs. It panics when
// srcs is empty or contains a nil source: an interleaved battery over
// nothing is a test-harness bug, not a runtime condition.
func Interleave(srcs ...Source) *Interleaved {
	if len(srcs) == 0 {
		panic("rng: Interleave of zero sources")
	}
	for i, s := range srcs {
		if s == nil {
			panic("rng: Interleave with nil source")
		}
		_ = i
	}
	c := make([]Source, len(srcs))
	copy(c, srcs)
	return &Interleaved{srcs: c}
}

// Uint64 returns the next word of the composite stream.
func (it *Interleaved) Uint64() uint64 {
	v := it.srcs[it.next].Uint64()
	it.next++
	if it.next == len(it.srcs) {
		it.next = 0
	}
	return v
}

// Width returns the number of interleaved sources.
func (it *Interleaved) Width() int { return len(it.srcs) }

// Name implements Named.
func (it *Interleaved) Name() string { return "interleaved" }
