// Package rng defines the generator interfaces shared by the hybrid
// PRNG, the baseline generators and the statistical test batteries,
// plus small adapters for extracting floats, bounded integers and
// bit fields from a raw 64-bit stream.
package rng

import "math"

// Source is the minimal interface every generator in this repository
// implements: a stream of independent, uniformly distributed 64-bit
// words.
type Source interface {
	// Uint64 returns the next 64-bit word of the stream.
	Uint64() uint64
}

// Seeder is implemented by generators that can be re-seeded in place.
type Seeder interface {
	Seed(seed uint64)
}

// Named is implemented by generators that know their display name;
// the cmd/ tools use it for reporting.
type Named interface {
	Name() string
}

// Float64 converts the next word of src into a float64 uniform on
// [0, 1) using the top 53 bits.
func Float64(src Source) float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Float32 converts the next word of src into a float32 uniform on
// [0, 1) using the top 24 bits.
func Float32(src Source) float32 {
	return float32(src.Uint64()>>40) / (1 << 24)
}

// Uint32 returns the high 32 bits of the next word. Tests that
// consume 32-bit values take the high half because low bits of some
// historical generators (LCGs) are the weak ones, and DIEHARD was
// specified over 32-bit words.
func Uint32(src Source) uint32 {
	return uint32(src.Uint64() >> 32)
}

// Uint64n returns a uniform integer in [0, n) by Lemire-style
// rejection (multiply-shift with a bias-elimination retry loop).
// n must be positive.
func Uint64n(src Source, n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return src.Uint64() & (n - 1)
	}
	// Classical rejection on the top range to avoid modulo bias.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := src.Uint64()
		if v < max {
			return v % n
		}
	}
}

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method. Used by example applications.
func NormFloat64(src Source) float64 {
	for {
		u := 2*Float64(src) - 1
		v := 2*Float64(src) - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// BitReader extracts consecutive bit fields from a Source, most
// significant bits of each word first. It is the software analogue of
// the paper's "bin" stream: the CPU FEED produces raw words and the
// walker peels 3 bits per step.
type BitReader struct {
	src  Source
	word uint64
	left uint // bits remaining in word
}

// NewBitReader returns a BitReader over src.
func NewBitReader(src Source) *BitReader {
	return &BitReader{src: src}
}

// Bits returns the next n bits (0 < n ≤ 64) as the low bits of the
// result.
//
// Because n ≤ 64, a read spans at most two source words, so the body
// is two straight-line takes rather than a loop: the buffered take
// when the field fits, else the remainder of the buffer concatenated
// with the top of a freshly drawn word. The walker's hot loop issues
// four of these per emitted number, which is why the shape matters.
func (b *BitReader) Bits(n uint) uint64 {
	if n == 0 || n > 64 {
		panic("rng: BitReader.Bits n out of range")
	}
	if n <= b.left {
		// Whole field sits in the buffered word: take its top n
		// unread bits. (1<<n wraps to 0 at n == 64, making the mask
		// all-ones, which is what a 64-bit take needs.)
		shift := b.left - n
		b.left = shift
		return (b.word >> shift) & (1<<n - 1)
	}
	// Field straddles a refill: drain the buffer (possibly zero
	// bits), then take the top of the next word.
	out := b.word & (1<<b.left - 1)
	need := n - b.left
	w := b.src.Uint64()
	b.word = w
	b.left = 64 - need
	return out<<need | w>>(64-need)
}

// Bit returns the next single bit.
func (b *BitReader) Bit() uint64 { return b.Bits(1) }

// Source returns the underlying word source.
func (b *BitReader) Source() Source { return b.src }

// State exposes the reader's buffered word and the count of its
// still-unread low bits — everything needed (with the source's own
// state) to checkpoint a stream mid-word.
func (b *BitReader) State() (word uint64, left uint) { return b.word, b.left }

// SetState restores a checkpointed buffer; left must be ≤ 64.
func (b *BitReader) SetState(word uint64, left uint) {
	if left > 64 {
		panic("rng: BitReader.SetState left > 64")
	}
	b.word, b.left = word, left
}

// WordsConsumed is unavailable on BitReader by design: callers that
// need accounting wrap the Source with a CountingSource.

// Lanes32 adapts a 64-bit source to a stream of 32-bit lanes, high
// half of each word first. Statistical batteries consume lanes
// because the classic tests were specified over 32-bit words and
// because several historical generators hide their defects in the
// low half of a packed 64-bit output.
func Lanes32(src Source) func() uint32 {
	var word uint64
	var have bool
	return func() uint32 {
		if have {
			have = false
			return uint32(word)
		}
		word = src.Uint64()
		have = true
		return uint32(word >> 32)
	}
}

// CountingSource wraps a Source and counts the words drawn from it.
type CountingSource struct {
	Src   Source
	Count uint64
}

// Uint64 draws from the wrapped source and increments the counter.
func (c *CountingSource) Uint64() uint64 {
	c.Count++
	return c.Src.Uint64()
}

// Func adapts a plain function to a Source.
type Func func() uint64

// Uint64 invokes the function.
func (f Func) Uint64() uint64 { return f() }
