package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// seq is a deterministic test source emitting a fixed slice, then
// panicking (tests must consume exactly what they expect).
type seq struct {
	vals []uint64
	i    int
}

func (s *seq) Uint64() uint64 {
	if s.i >= len(s.vals) {
		panic("seq exhausted")
	}
	v := s.vals[s.i]
	s.i++
	return v
}

// counter is an endless incrementing source.
type counter uint64

func (c *counter) Uint64() uint64 { *c++; return uint64(*c) }

func TestFloat64UsesTopBits(t *testing.T) {
	// All-ones word → (2^53−1)/2^53, just below 1.
	s := &seq{vals: []uint64{^uint64(0)}}
	v := Float64(s)
	if v >= 1 || v < 0.9999999999 {
		t.Errorf("Float64(max) = %g", v)
	}
	// Zero word → 0.
	s = &seq{vals: []uint64{0}}
	if v := Float64(s); v != 0 {
		t.Errorf("Float64(0) = %g", v)
	}
	// Only the low 11 bits set → still 0 (top 53 bits used).
	s = &seq{vals: []uint64{0x7FF}}
	if v := Float64(s); v != 0 {
		t.Errorf("Float64(low bits) = %g", v)
	}
}

func TestFloat32Range(t *testing.T) {
	s := &seq{vals: []uint64{^uint64(0), 0}}
	if v := Float32(s); v >= 1 {
		t.Errorf("Float32(max) = %g", v)
	}
	if v := Float32(s); v != 0 {
		t.Errorf("Float32(0) = %g", v)
	}
}

func TestUint32TakesHighHalf(t *testing.T) {
	s := &seq{vals: []uint64{0xDEADBEEF_12345678}}
	if v := Uint32(s); v != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", v)
	}
}

func TestUint64nPowerOfTwoUsesMask(t *testing.T) {
	s := &seq{vals: []uint64{0xFFFF}}
	if v := Uint64n(s, 16); v != 0xF {
		t.Errorf("Uint64n pow2 = %d", v)
	}
}

func TestUint64nRejectionIsUnbiased(t *testing.T) {
	// n = 3: max = 2^64 − (2^64 mod 3). A value just below 2^64
	// must be rejected and the next value used.
	max := ^uint64(0) - (^uint64(0) % 3)
	s := &seq{vals: []uint64{max, 7}} // first rejected, then 7 % 3 = 1
	if v := Uint64n(s, 3); v != 1 {
		t.Errorf("Uint64n rejection = %d, want 1", v)
	}
	if s.i != 2 {
		t.Errorf("consumed %d words, want 2", s.i)
	}
}

func TestUint64nDistribution(t *testing.T) {
	var c counter
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[Uint64n(&c, 7)]++
	}
	for d, n := range counts {
		if n < 9000 || n > 11000 {
			t.Errorf("residue %d count %d", d, n)
		}
	}
}

// scrambled is a counter pushed through the SplitMix64 output
// function — a minimal in-package PRNG (a raw counter would park the
// polar method's rejection loop near (−1, −1) for ~2^42 draws).
type scrambled uint64

func (s *scrambled) Uint64() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func TestNormFloat64Finite(t *testing.T) {
	var s scrambled
	for i := 0; i < 1000; i++ {
		v := NormFloat64(&s)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("NormFloat64 = %g", v)
		}
	}
}

func TestBitReaderMSBFirst(t *testing.T) {
	s := &seq{vals: []uint64{0x8000000000000001}}
	br := NewBitReader(s)
	if b := br.Bit(); b != 1 {
		t.Errorf("first bit = %d, want the MSB (1)", b)
	}
	if v := br.Bits(62); v != 0 {
		t.Errorf("middle bits = %d", v)
	}
	if b := br.Bit(); b != 1 {
		t.Errorf("last bit = %d, want the LSB (1)", b)
	}
}

func TestBitReaderFullWord(t *testing.T) {
	s := &seq{vals: []uint64{0x0123456789ABCDEF}}
	br := NewBitReader(s)
	if v := br.Bits(64); v != 0x0123456789ABCDEF {
		t.Errorf("Bits(64) = %#x", v)
	}
}

func TestBitReaderSpansWords(t *testing.T) {
	s := &seq{vals: []uint64{0x0000000000000001, 0x8000000000000000}}
	br := NewBitReader(s)
	br.Bits(63)
	// Next 2 bits: LSB of word 1 (1) then MSB of word 2 (1) → 0b11.
	if v := br.Bits(2); v != 3 {
		t.Errorf("spanning bits = %#b, want 0b11", v)
	}
}

func TestLanes32Order(t *testing.T) {
	s := &seq{vals: []uint64{0xAAAAAAAA_BBBBBBBB, 0xCCCCCCCC_DDDDDDDD}}
	lane := Lanes32(s)
	want := []uint32{0xAAAAAAAA, 0xBBBBBBBB, 0xCCCCCCCC, 0xDDDDDDDD}
	for i, w := range want {
		if got := lane(); got != w {
			t.Fatalf("lane %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestCountingSource(t *testing.T) {
	var c counter
	cs := &CountingSource{Src: &c}
	for i := 0; i < 5; i++ {
		cs.Uint64()
	}
	if cs.Count != 5 {
		t.Errorf("Count = %d", cs.Count)
	}
}

func TestFuncAdapter(t *testing.T) {
	calls := 0
	f := Func(func() uint64 { calls++; return 42 })
	if f.Uint64() != 42 || calls != 1 {
		t.Error("Func adapter broken")
	}
}

func TestBitReaderReassemblyProperty(t *testing.T) {
	// Any split of 128 bits into chunks reassembles the two words.
	f := func(w1, w2 uint64, cuts []uint8) bool {
		src := &seq{vals: []uint64{w1, w2}}
		br := NewBitReader(src)
		var widths []uint
		total := uint(0)
		for _, c := range cuts {
			n := uint(c)%64 + 1
			if total+n > 128 {
				break
			}
			widths = append(widths, n)
			total += n
		}
		if total < 128 {
			widths = append(widths, 128-total)
			if widths[len(widths)-1] > 64 {
				// split the remainder
				last := widths[len(widths)-1]
				widths[len(widths)-1] = 64
				widths = append(widths, last-64)
			}
		}
		var hi, lo uint64
		bitsSeen := uint(0)
		for _, n := range widths {
			v := br.Bits(n)
			for b := int(n) - 1; b >= 0; b-- {
				bit := v >> uint(b) & 1
				if bitsSeen < 64 {
					hi = hi<<1 | bit
				} else {
					lo = lo<<1 | bit
				}
				bitsSeen++
			}
		}
		return hi == w1 && lo == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitReaderStateAccessors(t *testing.T) {
	s := &seq{vals: []uint64{0xF0F0F0F0F0F0F0F0, 0x1234}}
	br := NewBitReader(s)
	br.Bits(10)
	word, left := br.State()
	if left != 54 {
		t.Errorf("left = %d, want 54", left)
	}
	if word != 0xF0F0F0F0F0F0F0F0 {
		t.Errorf("buffered word = %#x", word)
	}
	if br.Source() == nil {
		t.Error("Source accessor broken")
	}
	// Restore into a fresh reader over the same (advanced) source.
	br2 := NewBitReader(s)
	br2.SetState(word, left)
	a := br.Bits(54)
	b := br2.Bits(54)
	if a != b {
		t.Errorf("restored reader diverged: %#x vs %#x", a, b)
	}
}

func TestBitReaderSetStatePanicsOnBadLeft(t *testing.T) {
	br := NewBitReader(&seq{vals: []uint64{1}})
	defer func() {
		if recover() == nil {
			t.Error("SetState(_, 65) should panic")
		}
	}()
	br.SetState(0, 65)
}
