package scan

import (
	"testing"
	"testing/quick"

	"repro/internal/baselines"
)

func TestExclusiveSumSmall(t *testing.T) {
	dst, total := ExclusiveSum([]int64{3, 1, 4, 1, 5}, 4)
	want := []int64{0, 3, 4, 8, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	if total != 14 {
		t.Errorf("total = %d", total)
	}
	// Empty input.
	dst, total = ExclusiveSum(nil, 4)
	if len(dst) != 0 || total != 0 {
		t.Error("empty scan broken")
	}
}

func TestExclusiveSumParallelMatchesSerial(t *testing.T) {
	src := baselines.NewSplitMix64(1)
	n := 100000 // above the cutoff
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(src.Uint64() % 7)
	}
	serial, st := ExclusiveSum(xs, 1)
	for _, workers := range []int{2, 3, 8} {
		par, pt := ExclusiveSum(xs, workers)
		if pt != st {
			t.Fatalf("workers=%d: total %d vs %d", workers, pt, st)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: dst[%d] = %d, want %d", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestInclusiveSum(t *testing.T) {
	got := InclusiveSum([]int64{1, 2, 3}, 2)
	want := []int64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inclusive[%d] = %d", i, got[i])
		}
	}
}

func TestCompactSmall(t *testing.T) {
	out := Compact([]int32{10, 20, 30, 40}, []bool{true, false, false, true}, 4)
	if len(out) != 2 || out[0] != 10 || out[1] != 40 {
		t.Fatalf("compact = %v", out)
	}
	out = Compact([]int32{1, 2}, []bool{false, false}, 2)
	if len(out) != 0 {
		t.Errorf("all-false compact = %v", out)
	}
}

func TestCompactParallelMatchesSerial(t *testing.T) {
	src := baselines.NewSplitMix64(2)
	n := 80000
	xs := make([]int, n)
	keep := make([]bool, n)
	for i := range xs {
		xs[i] = i
		keep[i] = src.Uint64()&3 != 0
	}
	serial := Compact(xs, keep, 1)
	for _, workers := range []int{2, 5, 8} {
		par := Compact(xs, keep, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: length %d vs %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestCompactPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Compact([]int{1}, []bool{true, false}, 1)
}

func TestScanProperty(t *testing.T) {
	// dst[i+1] − dst[i] == src[i] for every i; last total matches.
	f := func(raw []int16, workersRaw uint8) bool {
		workers := int(workersRaw)%8 + 1
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		dst, total := ExclusiveSum(xs, workers)
		var sum int64
		for i := range xs {
			if dst[i] != sum {
				return false
			}
			sum += xs[i]
		}
		return total == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
