// Package scan implements the data-parallel primitives the paper's
// GPU list-ranking lineage builds on — prefix sums (Blelloch-style
// work-efficient scan) and stream compaction — executed for real
// across goroutines. The hybrid list-ranking implementation of the
// paper's reference [3] removes FIS nodes with exactly this
// scan-then-compact pattern; listrank.FISRankParallel uses this
// package the same way.
package scan

import (
	"runtime"
	"sync"
)

// sequentialCutoff is the size below which the parallel paths fall
// back to the serial loop (goroutine overhead dominates under it).
const sequentialCutoff = 1 << 14

// ExclusiveSum computes the exclusive prefix sum of src into a new
// slice: dst[i] = Σ_{j<i} src[j]. It also returns the total. The
// parallel version splits src into worker blocks, scans each block,
// scans the block totals serially, then offsets — the classic
// two-pass work-efficient scheme.
func ExclusiveSum(src []int64, workers int) (dst []int64, total int64) {
	n := len(src)
	dst = make([]int64, n)
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < sequentialCutoff || workers == 1 {
		var run int64
		for i, v := range src {
			dst[i] = run
			run += v
		}
		return dst, run
	}
	blocks := workers * 4
	if blocks > n {
		blocks = n
	}
	size := (n + blocks - 1) / blocks
	sums := make([]int64, blocks)

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	// Pass 1: per-block exclusive scan and block totals.
	for b := 0; b < blocks; b++ {
		lo := b * size
		if lo >= n {
			blocks = b
			break
		}
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(b, lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			var run int64
			for i := lo; i < hi; i++ {
				dst[i] = run
				run += src[i]
			}
			sums[b] = run
		}(b, lo, hi)
	}
	wg.Wait()
	// Scan the block totals serially (blocks ≪ n).
	var run int64
	offsets := make([]int64, blocks)
	for b := 0; b < blocks; b++ {
		offsets[b] = run
		run += sums[b]
	}
	// Pass 2: add the block offsets.
	for b := 0; b < blocks; b++ {
		lo := b * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		off := offsets[b]
		if off == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(lo, hi int, off int64) {
			defer wg.Done()
			defer func() { <-sem }()
			for i := lo; i < hi; i++ {
				dst[i] += off
			}
		}(lo, hi, off)
	}
	wg.Wait()
	return dst, run
}

// InclusiveSum computes dst[i] = Σ_{j≤i} src[j].
func InclusiveSum(src []int64, workers int) []int64 {
	dst, _ := ExclusiveSum(src, workers)
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Compact writes the elements of src whose keep flag is set into a
// fresh slice, preserving order, using the scan-based scatter (the
// GPU stream-compaction pattern, parallel across workers). The
// result is identical to the serial filter for any worker count.
func Compact[T any](src []T, keep []bool, workers int) []T {
	n := len(src)
	if len(keep) != n {
		panic("scan: Compact length mismatch")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < sequentialCutoff || workers == 1 {
		out := make([]T, 0, n/2)
		for i, k := range keep {
			if k {
				out = append(out, src[i])
			}
		}
		return out
	}
	flags := make([]int64, n)
	for i, k := range keep {
		if k {
			flags[i] = 1
		}
	}
	idx, total := ExclusiveSum(flags, workers)
	out := make([]T, total)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if keep[i] {
					out[idx[i]] = src[i]
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
