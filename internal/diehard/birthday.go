package diehard

import (
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
)

// birthdaySpacings implements Marsaglia's first test: choose m = 512
// "birthdays" in a year of n = 2^24 "days", sort them, and let J be
// the number of values that occur more than once among the spacings
// between consecutive birthdays. J is asymptotically Poisson with
// λ = m³/(4n) = 2. The counts over many samples are compared to the
// Poisson law by chi-square; the test is repeated for several bit
// fields of the word so low- and high-bit defects are both seen.
func birthdaySpacings(src rng.Source, scale float64) ([]float64, error) {
	const (
		m      = 512
		days   = 1 << 24
		lambda = float64(m) * float64(m) * float64(m) / (4 * float64(days))
	)
	samples := scaled(200, scale)
	// Bit offsets: take the 24-bit field starting at these positions
	// (from the top of the 64-bit word).
	offsets := []uint{0, 8, 16, 24, 32, 40}
	var ps []float64
	bdays := make([]uint32, m)
	spac := make([]uint32, m)
	for _, off := range offsets {
		counts := make([]float64, 12) // J = 0..10, ≥11 pooled
		for s := 0; s < samples; s++ {
			for i := range bdays {
				bdays[i] = uint32(src.Uint64() >> (64 - 24 - off) & (days - 1))
			}
			sort.Slice(bdays, func(a, b int) bool { return bdays[a] < bdays[b] })
			spac[0] = bdays[0]
			for i := 1; i < m; i++ {
				spac[i] = bdays[i] - bdays[i-1]
			}
			sort.Slice(spac, func(a, b int) bool { return spac[a] < spac[b] })
			j := 0
			for i := 1; i < m; i++ {
				if spac[i] == spac[i-1] {
					j++
				}
			}
			if j >= len(counts) {
				j = len(counts) - 1
			}
			counts[j]++
		}
		expected := make([]float64, len(counts))
		cum := 0.0
		for k := 0; k < len(expected)-1; k++ {
			pk := stats.PoissonPMF(lambda, k)
			expected[k] = pk * float64(samples)
			cum += pk
		}
		expected[len(expected)-1] = (1 - cum) * float64(samples)
		res, err := stats.ChiSquare(counts, expected, 5, 0)
		if err != nil {
			return nil, err
		}
		ps = append(ps, res.P)
	}
	return ps, nil
}

// operm5 tests the 120 orderings of 5-tuples of consecutive 32-bit
// values. Marsaglia's original uses overlapping tuples with a
// tabulated covariance correction; this implementation uses disjoint
// tuples, for which the plain multinomial chi-square over 120 cells
// is exact — same null hypothesis (no ordering bias), cleaner
// statistic.
func operm5(src rng.Source, scale float64) ([]float64, error) {
	tuples := scaled(120000, scale)
	counts := make([]float64, 120)
	lane := lane32(src)
	var vals [5]uint32
	for t := 0; t < tuples; t++ {
		for i := range vals {
			vals[i] = lane()
		}
		counts[permIndex5(vals)]++
	}
	expected := make([]float64, 120)
	e := float64(tuples) / 120
	for i := range expected {
		expected[i] = e
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// permIndex5 maps the ordering pattern of 5 values to a number in
// [0, 120) using the factorial number system (Lehmer code). Ties are
// broken towards the earlier index; with 32-bit values ties are
// vanishingly rare and bias-free.
func permIndex5(v [5]uint32) int {
	idx := 0
	fact := [5]int{24, 6, 2, 1, 1}
	for i := 0; i < 4; i++ {
		rank := 0
		for j := i + 1; j < 5; j++ {
			if v[j] < v[i] {
				rank++
			}
		}
		idx += rank * fact[i]
	}
	return idx
}
