// Package diehard re-implements Marsaglia's DIEHARD battery — the 15
// tests of the classic menu — against any rng.Source, reporting
// per-test p-values, the pass count under the paper's criterion
// (0.01 ≤ p ≤ 0.99) and the closing Kolmogorov–Smirnov statistic D
// over all p-values, exactly the columns of the paper's Table II.
//
// Sample sizes default to reduced-but-sound versions of Marsaglia's
// originals so a full battery run stays in CI budgets; Config.Scale
// restores (or exceeds) the original sizes. Two tests deviate from
// the original statistics where the originals depend on tabulated
// covariance data: OPERM5 uses disjoint 5-tuples (plain multinomial
// chi-square over the 120 orderings) and Overlapping Sums uses
// disjoint sums (KS against the exact normal); the Squeeze cell
// probabilities are obtained by a two-sample homogeneity chi-square
// against a reference generator. Each deviation tests the same null
// hypothesis and is noted on the test's description.
package diehard

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Config tunes the battery.
type Config struct {
	// Scale multiplies every test's sample size; 1.0 is the default
	// reduced size, larger values approach Marsaglia's originals.
	Scale float64
	// Lo and Hi bound the pass band for p-values; the paper uses
	// [0.01, 0.99].
	Lo, Hi float64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Lo == 0 && c.Hi == 0 {
		c.Lo, c.Hi = 0.01, 0.99
	}
	return c
}

// Result is the outcome of one battery entry.
type Result struct {
	Name        string
	Description string
	PValues     []float64 // one or more p-values, each U[0,1] under H0
	Err         error
}

// P returns the test's single decision p-value: the value itself
// when the test yields one, or the KS-combined p-value of the set.
func (r Result) P() float64 {
	switch len(r.PValues) {
	case 0:
		return 0
	case 1:
		return r.PValues[0]
	default:
		ks, err := stats.KSUniform(r.PValues)
		if err != nil {
			return 0
		}
		// The KS CDF value is itself U[0,1] under H0.
		return ks.P
	}
}

// extremeP is the per-p-value failure threshold for multi-p tests:
// Marsaglia's reading is that a test fails outright when any of its
// p-values is 0 or 1 "to six places"; 10^-4 is the conservative
// version of that rule (with ~10 p-values per test the false-alarm
// rate stays ≈ 0.2%).
const extremeP = 1e-4

// Passed applies the decision rule: the combined p-value must lie in
// the [lo, hi] band, and no individual p-value may be extreme.
func (r Result) Passed(lo, hi float64) bool {
	if r.Err != nil {
		return false
	}
	for _, p := range r.PValues {
		if p < extremeP || p > 1-extremeP {
			return false
		}
	}
	p := r.P()
	return p >= lo && p <= hi
}

// Outcome is a full battery run.
type Outcome struct {
	Generator string
	Results   []Result
	Passed    int
	Total     int
	KS        stats.KSResult // closing KS over all p-values
	Config    Config
}

func (o Outcome) String() string {
	return fmt.Sprintf("%s: %d/%d DIEHARD tests passed, KS D = %.4f",
		o.Generator, o.Passed, o.Total, o.KS.D)
}

// Test is one battery entry.
type Test struct {
	Name        string
	Description string
	Run         func(src rng.Source, scale float64) ([]float64, error)
}

// Menu returns the 15 tests of the classic DIEHARD menu, in
// Marsaglia's order.
func Menu() []Test {
	return []Test{
		{"birthday-spacings", "512 birthdays in 2^24 days; duplicate spacings ~ Poisson(2)", birthdaySpacings},
		{"overlapping-permutations", "orderings of 5-tuples of consecutive words (disjoint-tuple variant)", operm5},
		{"rank-31x31-32x32", "GF(2) ranks of 31×31 and 32×32 random bit matrices", rank3132},
		{"rank-6x8", "GF(2) ranks of 6×8 byte matrices", rank6x8},
		{"bitstream", "missing 20-bit words in an overlapping bit stream", bitstream},
		{"opso-oqso-dna", "missing 2-, 4- and 10-letter monkey words", monkeyTrio},
		{"count-the-1s-stream", "chi-square of overlapping 5-letter words over byte 1-counts", countOnesStream},
		{"count-the-1s-bytes", "as the stream test, on a fixed byte of each word", countOnesBytes},
		{"parking-lot", "cars parked without crashes in a 100×100 lot", parkingLot},
		{"minimum-distance", "minimum pairwise distance of 8000 points in a square", minimumDistance},
		{"3d-spheres", "minimum centre distance of 4000 spheres in a cube", spheres3D},
		{"squeeze", "iterations of k ← ⌈kU⌉ from 2^31 to 1 (two-sample variant)", squeeze},
		{"overlapping-sums", "sums of 100 uniforms ~ N(50, 100/12) (disjoint-sum variant)", overlappingSums},
		{"runs", "total runs up+down ~ N((2n−1)/3, (16n−29)/90)", runsTest},
		{"craps", "wins and throws-per-game over many games of craps", craps},
	}
}

// RunBattery runs the full menu against src.
func RunBattery(name string, src rng.Source, cfg Config) Outcome {
	cfg = cfg.withDefaults()
	menu := Menu()
	out := Outcome{Generator: name, Total: len(menu), Config: cfg}
	var allP []float64
	for _, t := range menu {
		ps, err := t.Run(src, cfg.Scale)
		res := Result{Name: t.Name, Description: t.Description, PValues: ps, Err: err}
		if res.Passed(cfg.Lo, cfg.Hi) {
			out.Passed++
		}
		allP = append(allP, ps...)
		out.Results = append(out.Results, res)
	}
	if ks, err := stats.KSUniform(allP); err == nil {
		out.KS = ks
	}
	return out
}

// RunBatteryInterleaved runs the battery against the round-robin
// interleaving of srcs — the multi-source adapter the cross-stream
// battery (internal/crossstream) feeds ensembles of parallel streams
// through. Inter-stream defects (aliased streams, lag correlation, a
// shared bad prefix) become serial structure of the composite
// stream, which the classic tests were built to catch.
func RunBatteryInterleaved(name string, srcs []rng.Source, cfg Config) Outcome {
	return RunBattery(name, rng.Interleave(srcs...), cfg)
}

// RunOne runs a single named test.
func RunOne(name string, src rng.Source, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	for _, t := range Menu() {
		if t.Name == name {
			ps, err := t.Run(src, cfg.Scale)
			return Result{Name: t.Name, Description: t.Description, PValues: ps, Err: err}, nil
		}
	}
	return Result{}, fmt.Errorf("diehard: unknown test %q", name)
}

// TestNames lists the menu in order.
func TestNames() []string {
	menu := Menu()
	names := make([]string, len(menu))
	for i, t := range menu {
		names[i] = t.Name
	}
	return names
}

// lane32 adapts a 64-bit source to the 32-bit lane stream the
// classic battery was specified over (see rng.Lanes32): several
// historical generators hide their defects in the low bits, and a
// battery that only reads the top of each word would wave them
// through.
func lane32(src rng.Source) func() uint32 { return rng.Lanes32(src) }

// scaled returns max(1, round(base·scale)).
func scaled(base int, scale float64) int {
	n := int(float64(base)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c
}
