package diehard

import (
	"fmt"
	"math/bits"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Count-the-1s: map each byte to one of five letters by its
// population count (≤2, 3, 4, 5, ≥6, with probabilities
// 37/256, 56/256, 70/256, 56/256, 37/256), then compare the
// chi-square of overlapping 5-letter words against that of 4-letter
// words: Q5 − Q4 is asymptotically χ² with 5^5 − 5^4 = 2500 degrees
// of freedom.
var onesLetterProb = [5]float64{37.0 / 256, 56.0 / 256, 70.0 / 256, 56.0 / 256, 37.0 / 256}

// onesLetter maps a byte to its letter.
func onesLetter(b byte) int {
	c := bits.OnesCount8(b)
	switch {
	case c <= 2:
		return 0
	case c >= 6:
		return 4
	default:
		return c - 2
	}
}

// countOnesQ computes the Q5−Q4 statistic and its p-value over the
// given letter stream.
func countOnesQ(letters []int) (float64, error) {
	n := len(letters)
	if n < 10 {
		return 0, fmt.Errorf("diehard: too few letters (%d)", n)
	}
	obs5 := make([]float64, 3125)
	obs4 := make([]float64, 625)
	idx := 0
	for i := 0; i < 4; i++ {
		idx = idx*5 + letters[i]
	}
	obs4[idx]++
	for i := 4; i < n; i++ {
		idx5 := idx*5 + letters[i]
		obs5[idx5]++
		idx = idx5 % 625
		obs4[idx]++
	}
	q := func(obs []float64, k int, total float64) float64 {
		var sum float64
		for w, o := range obs {
			p := 1.0
			for d, ww := 0, w; d < k; d++ {
				p *= onesLetterProb[ww%5]
				ww /= 5
			}
			e := p * total
			diff := o - e
			sum += diff * diff / e
		}
		return sum
	}
	q5 := q(obs5, 5, float64(n-4))
	q4 := q(obs4, 4, float64(n-3))
	statistic := q5 - q4
	if statistic < 0 {
		statistic = 0
	}
	return stats.ChiSquareCDF(statistic, 2500), nil
}

// countOnesStream takes letters from every byte of the stream.
func countOnesStream(src rng.Source, scale float64) ([]float64, error) {
	n := scaled(256000, scale)
	letters := make([]int, n)
	var word uint64
	var have int
	for i := range letters {
		if have == 0 {
			word = src.Uint64()
			have = 8
		}
		letters[i] = onesLetter(byte(word >> 56))
		word <<= 8
		have--
	}
	p, err := countOnesQ(letters)
	if err != nil {
		return nil, err
	}
	return []float64{p}, nil
}

// countOnesBytes takes one designated byte from each 32-bit lane —
// Marsaglia's "specific bytes" variant, sensitive to defects that
// the full stream averages away. Two byte positions are tested.
func countOnesBytes(src rng.Source, scale float64) ([]float64, error) {
	n := scaled(256000, scale)
	var ps []float64
	lane := lane32(src)
	for _, shift := range []uint{24, 0} {
		letters := make([]int, n)
		for i := range letters {
			letters[i] = onesLetter(byte(lane() >> shift))
		}
		p, err := countOnesQ(letters)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}
