package diehard

import (
	"testing"

	"repro/internal/baselines"
)

// Per-test benchmarks at a small scale, so battery cost regressions
// are visible. The scale keeps each run in milliseconds; the battery
// cmd runs at scale 1.
func BenchmarkDiehardTests(b *testing.B) {
	for _, test := range Menu() {
		b.Run(test.Name, func(b *testing.B) {
			src := baselines.NewSplitMix64(1)
			for i := 0; i < b.N; i++ {
				if _, err := test.Run(src, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFullBattery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := RunBattery("splitmix64", baselines.NewSplitMix64(uint64(i)), Config{Scale: 0.25})
		if out.Total != 15 {
			b.Fatal("menu shrank")
		}
	}
}

func BenchmarkBinaryRank32(b *testing.B) {
	src := baselines.NewSplitMix64(2)
	rows := make([]uint64, 32)
	for i := range rows {
		rows[i] = uint64(uint32(src.Uint64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binaryRank64(rows, 32)
	}
}

func BenchmarkMissingWords(b *testing.B) {
	src := baselines.NewSplitMix64(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c uint32
		missingWords(10, func() uint32 { c = uint32(src.Uint64()); return c & 1023 })
	}
}
