package diehard

import (
	"repro/internal/rng"
	"repro/internal/stats"
)

// Monkey tests: stream 2^21 overlapping 20-bit "words" (assembled
// from letters of various widths) and count how many of the 2^20
// possible words never appear. Under H0 the missing count is
// approximately normal with mean 2^20·e^{-2} ≈ 141909.33 and a
// standard deviation that depends on the overlap structure —
// Marsaglia's published values are 428 (bitstream), 290 (OPSO),
// 295 (OQSO) and 339 (DNA).
const (
	monkeyWords   = 1 << 21
	monkeySpace   = 1 << 20
	monkeyMissing = 141909.3295
)

// missingWords streams `monkeyWords` overlapping words built from
// letters of width letterBits (so a word is 20/letterBits letters)
// and returns the number of missing words. nextLetter supplies
// letters.
func missingWords(letterBits int, nextLetter func() uint32) float64 {
	lettersPerWord := 20 / letterBits
	mask := uint32(monkeySpace - 1)
	var seen [monkeySpace / 64]uint64

	var word uint32
	// Warm-up: the first word needs lettersPerWord letters.
	for i := 0; i < lettersPerWord; i++ {
		word = word<<letterBits | nextLetter()
	}
	word &= mask
	seen[word>>6] |= 1 << (word & 63)
	for i := 1; i < monkeyWords; i++ {
		word = (word<<letterBits | nextLetter()) & mask
		seen[word>>6] |= 1 << (word & 63)
	}
	present := 0
	for _, w := range seen {
		for ; w != 0; w &= w - 1 {
			present++
		}
	}
	return float64(monkeySpace - present)
}

// bitstream is the 20-bit monkey test on the raw bit stream.
// Sample size is fixed by the statistic (2^21 words); scale sets the
// repetition count.
func bitstream(src rng.Source, scale float64) ([]float64, error) {
	reps := scaled(2, scale)
	br := rng.NewBitReader(src)
	var ps []float64
	for r := 0; r < reps; r++ {
		missing := missingWords(1, func() uint32 { return uint32(br.Bit()) })
		z := (missing - monkeyMissing) / 428
		ps = append(ps, stats.NormalCDF(z))
	}
	return ps, nil
}

// monkeyTrio runs OPSO (two 10-bit letters), OQSO (four 5-bit
// letters) and DNA (ten 2-bit letters), each over a few bit
// positions of the 32-bit lanes, mirroring Marsaglia's sweep over
// designated bits.
func monkeyTrio(src rng.Source, scale float64) ([]float64, error) {
	var ps []float64
	lane := lane32(src)
	run := func(letterBits int, sigma float64, shifts []uint) {
		for _, sh := range shifts {
			letterMask := uint32(1)<<letterBits - 1
			letter := func() uint32 {
				return lane() >> sh & letterMask
			}
			missing := missingWords(letterBits, letter)
			z := (missing - monkeyMissing) / sigma
			ps = append(ps, stats.NormalCDF(z))
		}
	}
	// scale ≥ 2 widens the bit-position sweeps towards Marsaglia's
	// full 23/28/31-position versions.
	opsoShifts := []uint{0, 11, 22}
	oqsoShifts := []uint{0, 13, 27}
	dnaShifts := []uint{0, 15, 30}
	if scale >= 2 {
		opsoShifts = []uint{0, 4, 8, 11, 15, 18, 22}
		oqsoShifts = []uint{0, 5, 9, 13, 18, 22, 27}
		dnaShifts = []uint{0, 5, 10, 15, 20, 25, 30}
	}
	run(10, 290, opsoShifts)
	run(5, 295, oqsoShifts)
	run(2, 339, dnaShifts)
	return ps, nil
}
