package diehard

import (
	"math"

	"repro/internal/baselines"
	"repro/internal/rng"
	"repro/internal/stats"
)

// squeeze iterates k ← ⌈k·U⌉ from k = 2^31 down to k ≤ 1 and counts
// the iterations needed (capped at 48). Marsaglia's original
// compares against tabulated cell probabilities; this implementation
// runs the identical experiment on the generator under test and on a
// fixed-seed reference generator (MT19937-64) and applies a
// two-sample homogeneity chi-square — the same null hypothesis
// without embedding the table.
func squeeze(src rng.Source, scale float64) ([]float64, error) {
	trials := scaled(20000, scale)
	ref := baselines.NewMT19937_64(0x5EEDD1E5)
	sample := func(s rng.Source) []float64 {
		counts := make([]float64, 49-6+1) // cells: ≤6 .. 48
		for t := 0; t < trials; t++ {
			k := int64(1) << 31
			j := 0
			for k > 1 && j < 48 {
				u := rng.Float64(s)
				k = int64(math.Ceil(float64(k) * u))
				j++
			}
			cell := j - 6
			if cell < 0 {
				cell = 0
			}
			counts[cell]++
		}
		return counts
	}
	a := sample(src)
	b := sample(ref)
	// Two-sample chi-square with equal totals, pooling sparse cells.
	var x2, df float64
	var accA, accB float64
	flush := func() {
		if accA+accB >= 10 {
			d := accA - accB
			x2 += d * d / (accA + accB)
			df++
			accA, accB = 0, 0
		}
	}
	for i := range a {
		accA += a[i]
		accB += b[i]
		flush()
	}
	if accA+accB > 0 && df > 0 {
		d := accA - accB
		x2 += d * d / (accA + accB)
		df++
	}
	if df < 2 {
		df = 2
	}
	return []float64{stats.ChiSquareCDF(x2, df-1)}, nil
}

// overlappingSums: sums of 100 consecutive uniforms are approximately
// N(50, 100/12). Marsaglia's original uses overlapping sums with a
// covariance transform; this implementation uses disjoint sums, for
// which the normal law is immediate, and closes with a KS test of
// the probability transforms.
func overlappingSums(src rng.Source, scale float64) ([]float64, error) {
	m := scaled(1000, scale)
	sigma := math.Sqrt(100.0 / 12.0)
	us := make([]float64, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		for j := 0; j < 100; j++ {
			sum += rng.Float64(src)
		}
		us[i] = stats.NormalCDF((sum - 50) / sigma)
	}
	ks, err := stats.KSUniform(us)
	if err != nil {
		return nil, err
	}
	return []float64{ks.P}, nil
}

// runsTest counts the total number of maximal monotone runs (up and
// down) in a sequence of n uniforms; the total R is asymptotically
// N((2n−1)/3, (16n−29)/90). Several repetitions give several
// p-values.
func runsTest(src rng.Source, scale float64) ([]float64, error) {
	reps := scaled(6, scale)
	n := 10000
	var ps []float64
	for r := 0; r < reps; r++ {
		prev := rng.Float64(src)
		cur := rng.Float64(src)
		runs := 1
		up := cur > prev
		prev = cur
		for i := 2; i < n; i++ {
			cur = rng.Float64(src)
			dirUp := cur > prev
			if dirUp != up {
				runs++
				up = dirUp
			}
			prev = cur
		}
		mean := (2*float64(n) - 1) / 3
		variance := (16*float64(n) - 29) / 90
		z := (float64(runs) - mean) / math.Sqrt(variance)
		ps = append(ps, stats.NormalCDF(z))
	}
	return ps, nil
}

// craps plays many games of craps. Two statistics: the win count,
// binomial with p = 244/495, and the distribution of the number of
// throws per game, chi-squared against the exact law.
func craps(src rng.Source, scale float64) ([]float64, error) {
	games := scaled(200000, scale)
	throwDie := func() int { return int(rng.Uint64n(src, 6)) + 1 }
	wins := 0
	throwCounts := make([]float64, 21) // 1..20, ≥21 pooled at [20]
	for g := 0; g < games; g++ {
		roll := throwDie() + throwDie()
		throws := 1
		var won bool
		switch roll {
		case 7, 11:
			won = true
		case 2, 3, 12:
			won = false
		default:
			point := roll
			for {
				r := throwDie() + throwDie()
				throws++
				if r == point {
					won = true
					break
				}
				if r == 7 {
					won = false
					break
				}
			}
		}
		if won {
			wins++
		}
		cell := throws - 1
		if cell > 20 {
			cell = 20
		}
		throwCounts[cell]++
	}
	// Win-count z-score.
	p := 244.0 / 495.0
	mean := float64(games) * p
	sd := math.Sqrt(float64(games) * p * (1 - p))
	pWins := stats.NormalCDF((float64(wins) - mean) / sd)

	// Exact throw-length law: P(1) = 12/36; for k ≥ 2,
	// P(k) = Σ_point P(point)·(1−e_p)^{k−2}·e_p with
	// e_p = P(point) + 1/6.
	pointProb := map[int]float64{4: 3.0 / 36, 5: 4.0 / 36, 6: 5.0 / 36, 8: 5.0 / 36, 9: 4.0 / 36, 10: 3.0 / 36}
	expected := make([]float64, 21)
	expected[0] = 12.0 / 36 * float64(games)
	for k := 2; k <= 20; k++ {
		var pk float64
		for _, pp := range pointProb {
			ep := pp + 1.0/6
			pk += pp * math.Pow(1-ep, float64(k-2)) * ep
		}
		expected[k-1] = pk * float64(games)
	}
	// Tail cell ≥ 21.
	var head float64
	for _, e := range expected[:20] {
		head += e
	}
	expected[20] = float64(games) - head
	res, err := stats.ChiSquare(throwCounts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{pWins, res.P}, nil
}
