package diehard

import (
	"repro/internal/rng"
	"repro/internal/stats"
)

// rankProb is the exact GF(2) rank law, shared with the TestU01
// battery via internal/stats.
func rankProb(m, n, r int) float64 { return stats.GF2RankProb(m, n, r) }

// binaryRank64 computes the GF(2) rank of a matrix whose rows are
// the low `cols` bits of the given words.
func binaryRank64(rows []uint64, cols int) int {
	rank := 0
	work := append([]uint64(nil), rows...)
	mask := uint64(1) << (cols - 1)
	for col := 0; col < cols && rank < len(work); col++ {
		bit := mask >> col
		pivot := -1
		for i := rank; i < len(work); i++ {
			if work[i]&bit != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		for i := 0; i < len(work); i++ {
			if i != rank && work[i]&bit != 0 {
				work[i] ^= work[rank]
			}
		}
		rank++
	}
	return rank
}

// rankChiSquare builds `trials` random m×n matrices with rowGen and
// chi-squares the rank counts against the exact law, pooling all
// ranks below `floor`.
func rankChiSquare(trials, m, n, floor int, rowGen func() uint64) ([]float64, error) {
	maxRank := m
	if n < m {
		maxRank = n
	}
	ncells := maxRank - floor + 2 // floor-1 and below pooled into cell 0
	counts := make([]float64, ncells)
	rows := make([]uint64, m)
	for t := 0; t < trials; t++ {
		for i := range rows {
			rows[i] = rowGen()
		}
		r := binaryRank64(rows, n)
		cell := r - floor + 1
		if cell < 0 {
			cell = 0
		}
		counts[cell]++
	}
	expected := make([]float64, ncells)
	for r := 0; r <= maxRank; r++ {
		cell := r - floor + 1
		if cell < 0 {
			cell = 0
		}
		expected[cell] += rankProb(m, n, r) * float64(trials)
	}
	res, err := stats.ChiSquare(counts, expected, 5, 0)
	if err != nil {
		return nil, err
	}
	return []float64{res.P}, nil
}

// rank3132 is DIEHARD's "ranks of 31×31 and 32×32 matrices": the
// rows of the 31×31 matrix are the high 31 bits of successive words;
// the 32×32 rows are full 32-bit halves. Ranks below n−3 are pooled.
func rank3132(src rng.Source, scale float64) ([]float64, error) {
	trials := scaled(4000, scale)
	lane := lane32(src)
	p31, err := rankChiSquare(trials, 31, 31, 29, func() uint64 {
		return uint64(lane() >> 1)
	})
	if err != nil {
		return nil, err
	}
	p32, err := rankChiSquare(trials, 32, 32, 30, func() uint64 {
		return uint64(lane())
	})
	if err != nil {
		return nil, err
	}
	return append(p31, p32...), nil
}

// rank6x8 is DIEHARD's "ranks of 6×8 matrices": rows are bytes taken
// from successive words; ranks 0..4 pool.
func rank6x8(src rng.Source, scale float64) ([]float64, error) {
	trials := scaled(100000, scale)
	var word uint64
	var have int
	nextByte := func() uint64 {
		if have == 0 {
			word = src.Uint64()
			have = 8
		}
		b := word >> 56
		word <<= 8
		have--
		return b
	}
	return rankChiSquare(trials, 6, 8, 5, nextByte)
}
