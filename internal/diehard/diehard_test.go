package diehard

import (
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/stats"
)

func TestRankProbSumsToOne(t *testing.T) {
	for _, dims := range [][2]int{{31, 31}, {32, 32}, {6, 8}, {5, 5}} {
		m, n := dims[0], dims[1]
		sum := 0.0
		max := m
		if n < max {
			max = n
		}
		for r := 0; r <= max; r++ {
			p := rankProb(m, n, r)
			if p < 0 || p > 1 {
				t.Fatalf("rankProb(%d,%d,%d) = %g", m, n, r, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("rank probabilities for %dx%d sum to %g", m, n, sum)
		}
	}
	if rankProb(4, 4, 5) != 0 || rankProb(4, 4, -1) != 0 {
		t.Error("out-of-range ranks must have probability 0")
	}
}

func TestRankProbKnownValues(t *testing.T) {
	// Classic 32×32 values: P(32) ≈ 0.2888, P(31) ≈ 0.5776,
	// P(30) ≈ 0.1284.
	if p := rankProb(32, 32, 32); math.Abs(p-0.2888) > 0.0005 {
		t.Errorf("P(rank 32) = %g, want ≈ 0.2888", p)
	}
	if p := rankProb(32, 32, 31); math.Abs(p-0.5776) > 0.0005 {
		t.Errorf("P(rank 31) = %g, want ≈ 0.5776", p)
	}
	if p := rankProb(32, 32, 30); math.Abs(p-0.1284) > 0.0005 {
		t.Errorf("P(rank 30) = %g, want ≈ 0.1284", p)
	}
}

func TestBinaryRank64(t *testing.T) {
	// Identity-ish matrix has full rank.
	rows := []uint64{0b100, 0b010, 0b001}
	if r := binaryRank64(rows, 3); r != 3 {
		t.Errorf("identity rank = %d, want 3", r)
	}
	// Duplicate rows collapse.
	rows = []uint64{0b101, 0b101, 0b011}
	if r := binaryRank64(rows, 3); r != 2 {
		t.Errorf("rank = %d, want 2", r)
	}
	// Zero matrix.
	rows = []uint64{0, 0, 0}
	if r := binaryRank64(rows, 3); r != 0 {
		t.Errorf("zero rank = %d, want 0", r)
	}
	// Linear dependence: r3 = r1 XOR r2.
	rows = []uint64{0b110, 0b011, 0b101}
	if r := binaryRank64(rows, 3); r != 2 {
		t.Errorf("dependent rank = %d, want 2", r)
	}
	// Input must not be modified.
	orig := []uint64{0b111, 0b001}
	binaryRank64(orig, 3)
	if orig[0] != 0b111 || orig[1] != 0b001 {
		t.Error("binaryRank64 modified its input")
	}
}

func TestPermIndex5Bijective(t *testing.T) {
	// All 120 permutations of {10,20,30,40,50} must map to distinct
	// indices in [0,120).
	vals := [5]uint32{10, 20, 30, 40, 50}
	seen := make(map[int]bool)
	var recurse func(perm [5]uint32, k int)
	recurse = func(perm [5]uint32, k int) {
		if k == 5 {
			idx := permIndex5(perm)
			if idx < 0 || idx >= 120 {
				t.Fatalf("index %d out of range", idx)
			}
			if seen[idx] {
				t.Fatalf("index %d duplicated", idx)
			}
			seen[idx] = true
			return
		}
		for i := k; i < 5; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(perm, k+1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(vals, 0)
	if len(seen) != 120 {
		t.Errorf("saw %d distinct indices, want 120", len(seen))
	}
}

func TestOnesLetterDistribution(t *testing.T) {
	var counts [5]int
	for b := 0; b < 256; b++ {
		counts[onesLetter(byte(b))]++
	}
	want := [5]int{37, 56, 70, 56, 37}
	if counts != want {
		t.Errorf("letter counts = %v, want %v", counts, want)
	}
}

func TestCrapsThrowLawSumsToOne(t *testing.T) {
	pointProb := map[int]float64{4: 3.0 / 36, 5: 4.0 / 36, 6: 5.0 / 36, 8: 5.0 / 36, 9: 4.0 / 36, 10: 3.0 / 36}
	total := 12.0 / 36
	for k := 2; k <= 2000; k++ {
		for _, pp := range pointProb {
			ep := pp + 1.0/6
			total += pp * math.Pow(1-ep, float64(k-2)) * ep
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("throw-length law sums to %g", total)
	}
}

func TestMissingWordsOnPerfectStream(t *testing.T) {
	// A counter covering all 2^20 words leaves nothing missing.
	var c uint32
	missing := missingWords(20, func() uint32 { c++; return c })
	if missing != 0 {
		t.Errorf("counter stream missing = %g, want 0", missing)
	}
	// A constant stream leaves all but one missing.
	missing = missingWords(20, func() uint32 { return 12345 })
	if missing != monkeySpace-1 {
		t.Errorf("constant stream missing = %g, want %d", missing, monkeySpace-1)
	}
}

func TestResultPAndPassed(t *testing.T) {
	r := Result{PValues: []float64{0.5}}
	if r.P() != 0.5 {
		t.Errorf("single p = %g", r.P())
	}
	if !r.Passed(0.01, 0.99) {
		t.Error("0.5 should pass")
	}
	r = Result{PValues: []float64{0.0000001}}
	if r.Passed(0.01, 0.99) {
		t.Error("extreme p should fail")
	}
	r = Result{}
	if r.P() != 0 {
		t.Error("empty result should have p = 0")
	}
	r = Result{PValues: []float64{0.2, 0.4, 0.6, 0.8}}
	if p := r.P(); p <= 0 || p >= 1 {
		t.Errorf("combined p = %g", p)
	}
	bad := Result{PValues: []float64{0.5}, Err: errTest}
	if bad.Passed(0.01, 0.99) {
		t.Error("errored test must not pass")
	}
}

var errTest = errDummy{}

type errDummy struct{}

func (errDummy) Error() string { return "dummy" }

func TestRunOneUnknownName(t *testing.T) {
	if _, err := RunOne("nonsense", baselines.NewSplitMix64(1), Config{}); err == nil {
		t.Error("unknown test should fail")
	}
}

func TestRunOneBirthday(t *testing.T) {
	res, err := RunOne("birthday-spacings", baselines.NewMT19937_64(7), Config{Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PValues) == 0 {
		t.Fatal("no p-values")
	}
	for _, p := range res.PValues {
		if p < 0 || p > 1 {
			t.Errorf("p = %g out of range", p)
		}
	}
}

func TestTestNamesMatchesMenu(t *testing.T) {
	names := TestNames()
	if len(names) != 15 {
		t.Fatalf("menu has %d entries, want 15", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate test name %q", n)
		}
		seen[n] = true
	}
}

func TestScaledHelper(t *testing.T) {
	if scaled(100, 1) != 100 || scaled(100, 0.5) != 50 {
		t.Error("scaled arithmetic wrong")
	}
	if scaled(1, 0.001) != 1 {
		t.Error("scaled must clamp to 1")
	}
}

func TestBatteryGoodGeneratorPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("battery run is slow")
	}
	out := RunBattery("mt19937-64", baselines.NewMT19937_64(20240601), Config{})
	if out.Total != 15 {
		t.Fatalf("total = %d", out.Total)
	}
	if out.Passed < 13 {
		for _, r := range out.Results {
			t.Logf("%-28s p=%.6f err=%v", r.Name, r.P(), r.Err)
		}
		t.Errorf("MT19937-64 passed only %d/15", out.Passed)
	}
	if out.KS.D <= 0 || out.KS.D >= 0.5 {
		t.Errorf("closing KS D = %g looks wrong", out.KS.D)
	}
}

func TestBatteryWeakGeneratorFails(t *testing.T) {
	if testing.Short() {
		t.Skip("battery run is slow")
	}
	// The raw 64-bit LCG has famously bad low bits and strong serial
	// structure; the battery must catch it.
	out := RunBattery("lcg64", baselines.NewKnuthLCG(1), Config{})
	if out.Passed > 13 {
		for _, r := range out.Results {
			t.Logf("%-28s p=%.6f", r.Name, r.P())
		}
		t.Errorf("raw LCG passed %d/15 — battery too lenient", out.Passed)
	}
}

func TestBatteryPValuesInRange(t *testing.T) {
	if testing.Short() {
		t.Skip("battery run is slow")
	}
	out := RunBattery("splitmix", baselines.NewSplitMix64(99), Config{Scale: 0.25})
	for _, r := range out.Results {
		if r.Err != nil {
			t.Errorf("%s errored: %v", r.Name, r.Err)
		}
		for _, p := range r.PValues {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Errorf("%s produced p = %g", r.Name, p)
			}
		}
	}
	if out.String() == "" {
		t.Error("outcome string empty")
	}
}

func TestKSStatisticAgainstBattery(t *testing.T) {
	// Sanity that the closing KS machinery matches a direct call.
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	ks, err := stats.KSUniform(ps)
	if err != nil {
		t.Fatal(err)
	}
	if ks.D > 0.12 {
		t.Errorf("evenly spread p-values have D = %g", ks.D)
	}
	sc := sortedCopy([]float64{0.3, 0.1, 0.2})
	if sc[0] != 0.1 || sc[2] != 0.3 {
		t.Error("sortedCopy broken")
	}
}
