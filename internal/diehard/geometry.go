package diehard

import (
	"math"

	"repro/internal/rng"
	"repro/internal/stats"
)

// parkingLot attempts to park 12000 cars in a 100×100 lot; a car
// "crashes" (and is discarded) if both |Δx| < 1 and |Δy| < 1 against
// some parked car — Marsaglia's cars are 1×1 squares under the L∞
// metric. The number parked is approximately N(3523, 21.9²)
// (Marsaglia's constants; reconfirmed by direct simulation of this
// rule, mean ≈ 3516). Several repetitions give several p-values.
func parkingLot(src rng.Source, scale float64) ([]float64, error) {
	reps := scaled(5, scale)
	const (
		attempts = 12000
		side     = 100.0
		mean     = 3523.0
		sigma    = 21.9
	)
	// Grid buckets of side 1 accelerate the neighbourhood check.
	const cells = 100
	var ps []float64
	for r := 0; r < reps; r++ {
		grid := make([][]int, cells*cells)
		var xs, ys []float64
		parked := 0
		for a := 0; a < attempts; a++ {
			x := rng.Float64(src) * side
			y := rng.Float64(src) * side
			cx, cy := int(x), int(y)
			if cx >= cells {
				cx = cells - 1
			}
			if cy >= cells {
				cy = cells - 1
			}
			ok := true
		scan:
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					nx, ny := cx+dx, cy+dy
					if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
						continue
					}
					for _, j := range grid[nx*cells+ny] {
						ddx, ddy := xs[j]-x, ys[j]-y
						if ddx > -1 && ddx < 1 && ddy > -1 && ddy < 1 {
							ok = false
							break scan
						}
					}
				}
			}
			if ok {
				grid[cx*cells+cy] = append(grid[cx*cells+cy], len(xs))
				xs = append(xs, x)
				ys = append(ys, y)
				parked++
			}
		}
		z := (float64(parked) - mean) / sigma
		ps = append(ps, stats.NormalCDF(z))
	}
	return ps, nil
}

// minDistanceSq finds the squared minimum pairwise distance among
// points in a square of the given side, using a uniform grid.
func minDistanceSq(xs, ys []float64, side float64, cells int) float64 {
	grid := make([][]int, cells*cells)
	cell := side / float64(cells)
	for i := range xs {
		cx, cy := int(xs[i]/cell), int(ys[i]/cell)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		grid[cx*cells+cy] = append(grid[cx*cells+cy], i)
	}
	best := math.Inf(1)
	// Expand the search ring until a neighbour must have been seen.
	for i := range xs {
		cx, cy := int(xs[i]/cell), int(ys[i]/cell)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		for ring := 0; ring < cells; ring++ {
			// Once the ring's inner boundary exceeds the best
			// distance found, stop.
			if ring > 0 {
				inner := (float64(ring-1) * cell)
				if inner*inner > best {
					break
				}
			}
			for dx := -ring; dx <= ring; dx++ {
				for dy := -ring; dy <= ring; dy++ {
					if maxAbs(dx, dy) != ring {
						continue
					}
					nx, ny := cx+dx, cy+dy
					if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
						continue
					}
					for _, j := range grid[nx*cells+ny] {
						if j == i {
							continue
						}
						ddx, ddy := xs[j]-xs[i], ys[j]-ys[i]
						d := ddx*ddx + ddy*ddy
						if d < best {
							best = d
						}
					}
				}
			}
		}
	}
	return best
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// minimumDistance scatters 8000 points in a 10000×10000 square; the
// squared minimum distance is approximately exponential with mean
// 0.995, so u = 1 − e^{−d²/0.995} is uniform. A KS test over the
// repetitions yields the p-value.
func minimumDistance(src rng.Source, scale float64) ([]float64, error) {
	reps := scaled(40, scale)
	const (
		n    = 8000
		side = 10000.0
	)
	us := make([]float64, 0, reps)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for r := 0; r < reps; r++ {
		for i := 0; i < n; i++ {
			xs[i] = rng.Float64(src) * side
			ys[i] = rng.Float64(src) * side
		}
		d2 := minDistanceSq(xs, ys, side, 250)
		us = append(us, 1-math.Exp(-d2/0.995))
	}
	ks, err := stats.KSUniform(us)
	if err != nil {
		return nil, err
	}
	return []float64{ks.P}, nil
}

// spheres3D scatters 4000 points in a 1000³ cube; with r the minimum
// centre distance, r³/30 is approximately exponential(1). KS over
// repetitions.
func spheres3D(src rng.Source, scale float64) ([]float64, error) {
	reps := scaled(20, scale)
	const (
		n    = 4000
		side = 1000.0
	)
	us := make([]float64, 0, reps)
	type pt struct{ x, y, z float64 }
	pts := make([]pt, n)
	for r := 0; r < reps; r++ {
		for i := range pts {
			pts[i] = pt{rng.Float64(src) * side, rng.Float64(src) * side, rng.Float64(src) * side}
		}
		// 3-D grid of cell ~40.
		const cells = 25
		cell := side / cells
		grid := make([][]int, cells*cells*cells)
		for i, p := range pts {
			cx, cy, cz := int(p.x/cell), int(p.y/cell), int(p.z/cell)
			if cx >= cells {
				cx = cells - 1
			}
			if cy >= cells {
				cy = cells - 1
			}
			if cz >= cells {
				cz = cells - 1
			}
			grid[(cx*cells+cy)*cells+cz] = append(grid[(cx*cells+cy)*cells+cz], i)
		}
		best := math.Inf(1)
		for i, p := range pts {
			cx, cy, cz := int(p.x/cell), int(p.y/cell), int(p.z/cell)
			if cx >= cells {
				cx = cells - 1
			}
			if cy >= cells {
				cy = cells - 1
			}
			if cz >= cells {
				cz = cells - 1
			}
			for ring := 0; ring < cells; ring++ {
				if ring > 0 {
					inner := float64(ring-1) * cell
					if inner*inner > best {
						break
					}
				}
				for dx := -ring; dx <= ring; dx++ {
					for dy := -ring; dy <= ring; dy++ {
						for dz := -ring; dz <= ring; dz++ {
							if maxAbs(maxAbs(dx, dy), dz) != ring {
								continue
							}
							nx, ny, nz := cx+dx, cy+dy, cz+dz
							if nx < 0 || ny < 0 || nz < 0 || nx >= cells || ny >= cells || nz >= cells {
								continue
							}
							for _, j := range grid[(nx*cells+ny)*cells+nz] {
								if j == i {
									continue
								}
								ddx, ddy, ddz := pts[j].x-p.x, pts[j].y-p.y, pts[j].z-p.z
								d := ddx*ddx + ddy*ddy + ddz*ddz
								if d < best {
									best = d
								}
							}
						}
					}
				}
			}
		}
		r3 := math.Pow(best, 1.5)
		us = append(us, 1-math.Exp(-r3/30))
	}
	ks, err := stats.KSUniform(us)
	if err != nil {
		return nil, err
	}
	return []float64{ks.P}, nil
}
