package hybrid

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/rng"
)

// CPUReport summarises a real (wall-clock) CPU-backend run — the
// paper's Figure 6 experiment, where the hybrid generator runs on
// the multicore CPU alone (OpenMP in the paper, goroutines here) and
// is compared against serial glibc rand().
type CPUReport struct {
	Generator   string
	N           int
	Workers     int           // goroutine walkers used
	Wall        time.Duration // measured wall time
	PerNumberNs float64       // Wall / N
	HostCores   int           // GOMAXPROCS at run time
}

func (r CPUReport) String() string {
	return fmt.Sprintf("%s: N=%d workers=%d wall=%v (%.1f ns/number, %d host cores)",
		r.Generator, r.N, r.Workers, r.Wall, r.PerNumberNs, r.HostCores)
}

// ProjectedWallNs linearly rescales the measured wall time from the
// machine's real core count to a hypothetical `cores`-core host.
// The projection is sound for this workload because walkers share
// nothing (the paper's thread-safety argument); it is used to report
// the Figure 6 shape on hosts with fewer cores than the paper's
// 6-core i7.
func (r CPUReport) ProjectedWallNs(cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	effective := r.HostCores
	if r.Workers < effective {
		effective = r.Workers
	}
	if effective < 1 {
		effective = 1
	}
	return float64(r.Wall.Nanoseconds()) * float64(effective) / float64(cores)
}

// GenerateCPU runs the hybrid generator entirely on the CPU: workers
// independent walkers, each fed by its own glibc-rand bit stream,
// filling dst cooperatively. It returns the measured report. dst may
// be nil to time generation without keeping the numbers (a length
// must then be provided via n).
func GenerateCPU(n int, workers int, cfg core.Config, seed uint64) (CPUReport, []uint64, error) {
	if n < 1 {
		return CPUReport{}, nil, fmt.Errorf("hybrid: n = %d < 1", n)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool, err := core.NewPool(workers, cfg, func(i int) *rng.BitReader {
		return bitsource.Glibc(uint32(baselines.Mix64(seed + uint64(i))))
	})
	if err != nil {
		return CPUReport{}, nil, err
	}
	dst := make([]uint64, n)
	startT := time.Now() //lint:wallclock benchmark wall-clock timing is the measurement itself
	pool.Fill(dst)
	wall := time.Since(startT) //lint:wallclock benchmark wall-clock timing is the measurement itself
	return CPUReport{
		Generator:   "hybrid-prng (cpu)",
		N:           n,
		Workers:     workers,
		Wall:        wall,
		PerNumberNs: float64(wall.Nanoseconds()) / float64(n),
		HostCores:   runtime.GOMAXPROCS(0),
	}, dst, nil
}

// GenerateGlibcSerial produces n 64-bit numbers from the serial
// glibc rand() re-implementation — the Figure 6 baseline. (glibc's
// rand() is not thread safe, so its honest parallel speedup is 1.)
func GenerateGlibcSerial(n int, seed uint32) (CPUReport, []uint64, error) {
	if n < 1 {
		return CPUReport{}, nil, fmt.Errorf("hybrid: n = %d < 1", n)
	}
	g := baselines.NewGlibcRand(seed)
	dst := make([]uint64, n)
	startT := time.Now() //lint:wallclock benchmark wall-clock timing is the measurement itself
	for i := range dst {
		dst[i] = g.Uint64()
	}
	wall := time.Since(startT) //lint:wallclock benchmark wall-clock timing is the measurement itself
	return CPUReport{
		Generator:   "glibc rand() (serial)",
		N:           n,
		Workers:     1,
		Wall:        wall,
		PerNumberNs: float64(wall.Nanoseconds()) / float64(n),
		HostCores:   runtime.GOMAXPROCS(0),
	}, dst, nil
}
