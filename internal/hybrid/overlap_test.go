package hybrid

import (
	"testing"

	"repro/internal/core"
)

func TestOverlappedMatchesDirectStream(t *testing.T) {
	// The feeder changes scheduling, never content: both backends
	// must produce the identical numbers for identical seeds.
	const n = 20000
	_, direct, err := GenerateCPU(n, 2, core.Config{}, 77)
	if err != nil {
		t.Fatal(err)
	}
	rep, overlapped, err := GenerateCPUOverlapped(n, 2, core.Config{}, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != overlapped[i] {
			t.Fatalf("streams diverge at %d: %x vs %x", i, direct[i], overlapped[i])
		}
	}
	if rep.Wall <= 0 || rep.N != n {
		t.Errorf("bad report %+v", rep)
	}
}

func TestOverlappedValidation(t *testing.T) {
	if _, _, err := GenerateCPUOverlapped(0, 1, core.Config{}, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestOverlappedDefaultWorkers(t *testing.T) {
	rep, nums, err := GenerateCPUOverlapped(1000, 0, core.Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers < 1 || len(nums) != 1000 {
		t.Errorf("workers=%d len=%d", rep.Workers, len(nums))
	}
}
