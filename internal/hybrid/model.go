// Package hybrid implements the paper's hybrid CPU+GPU runtime: the
// FEED (CPU bit production), TRANSFER (PCIe) and GENERATE (GPU
// expander walks) work units, pipelined over the simulated platform
// of internal/gpu, plus the pure-CPU goroutine backend that the
// paper's Figure 6 measures for real.
//
// # Cost model calibration
//
// The simulated constants are calibrated so the model reproduces the
// paper's published operating point, then everything else (Figures
// 1, 3, 4, 5, 7, 8 shapes) follows from the schedule rather than
// from further tuning:
//
//   - GenCyclesPerStep = 56: one expander-walk step on the Tesla
//     C1060 (integer ops + a strided read of the feed bits). With
//     the paper's 64-step walks this makes the device's peak
//     generation rate 240·1.3 GHz / (64·56) ≈ 87 M numbers/s.
//   - FeedBytesPerSec = 1.7 GB/s: the i7's multicore glibc-rand bit
//     production. Each number needs 3·64 bits = 24 B of feed, so the
//     CPU can feed ≈ 71 M numbers/s — the bottleneck, giving the
//     paper's headline ≈ 0.07 GNumbers/s and its "CPU never idle,
//     GPU ≈ 20% idle" utilisation split (71/87 ≈ 0.81).
//   - The link moves those 24 B/number over 8 GB/s (PCIe 2.0),
//     ≈ 21% link utilisation — transfer is never the bottleneck,
//     matching the paper's tiny TRANSFER arrows in Figure 4.
//   - MTBatchCyclesPerNumber and CurandDeviceCyclesPerNumber are
//     set from the paper's Figure 3 ratio (hybrid ≈ 2× faster):
//     both baselines pay global-memory round trips per number — the
//     SDK Mersenne Twister sample stores its batch to device memory
//     and re-reads it, and the CURAND device API loads and stores
//     its 48-byte XORWOW state around every call.
package hybrid

import "fmt"

// CostModel holds the simulated-platform constants.
type CostModel struct {
	// WalkLen is the per-number walk length l (64 in the paper).
	WalkLen int
	// InitWalkLen is the Algorithm 1 mixing walk length.
	InitWalkLen int
	// GenCyclesPerStep is the GPU cost of one walk step.
	GenCyclesPerStep float64
	// ThreadSetupCycles is the fixed per-thread kernel prologue.
	ThreadSetupCycles float64
	// FeedBytesPerSec is the CPU's random-byte production rate.
	FeedBytesPerSec float64
	// FeedChunkOverheadNs is the fixed host cost per produced chunk
	// (buffer management, OpenMP fork/join in the paper's code).
	FeedChunkOverheadNs float64

	// MTBatchCyclesPerNumber is the per-number device cost of the
	// SDK Mersenne Twister batch generator.
	MTBatchCyclesPerNumber float64
	// MTSetupNs is the twister's one-off seeding/table cost.
	MTSetupNs float64
	// CurandDeviceCyclesPerNumber is the per-number cost of the
	// CURAND device API (XORWOW with per-call state load/store).
	CurandDeviceCyclesPerNumber float64
	// CurandSetupNs is curand_init's cost (state setup kernel).
	CurandSetupNs float64
}

// DefaultCostModel returns the calibration described in the package
// comment.
func DefaultCostModel() CostModel {
	return CostModel{
		WalkLen:             64,
		InitWalkLen:         64,
		GenCyclesPerStep:    56,
		ThreadSetupCycles:   200,
		FeedBytesPerSec:     1.7e9,
		FeedChunkOverheadNs: 2000,

		MTBatchCyclesPerNumber:      9000,
		MTSetupNs:                   200000,
		CurandDeviceCyclesPerNumber: 9600,
		CurandSetupNs:               150000,
	}
}

func (m CostModel) validate() error {
	if m.WalkLen < 1 || m.InitWalkLen < 0 {
		return fmt.Errorf("hybrid: bad walk lengths %d/%d", m.WalkLen, m.InitWalkLen)
	}
	if m.GenCyclesPerStep <= 0 || m.FeedBytesPerSec <= 0 {
		return fmt.Errorf("hybrid: non-positive rates")
	}
	if m.ThreadSetupCycles < 0 || m.FeedChunkOverheadNs < 0 {
		return fmt.Errorf("hybrid: negative overheads")
	}
	return nil
}

// FeedBytesPerNumber returns the feed traffic per generated number:
// 3 bits per walk step.
func (m CostModel) FeedBytesPerNumber() float64 {
	return float64(3*m.WalkLen) / 8
}

// FeedBytesPerInit returns the feed traffic to initialise one
// walker: 64 start bits plus 3 bits per mixing step.
func (m CostModel) FeedBytesPerInit() float64 {
	return float64(64+3*m.InitWalkLen) / 8
}

// GenCyclesPerNumber returns the GPU cycles to produce one number.
func (m CostModel) GenCyclesPerNumber() float64 {
	return float64(m.WalkLen) * m.GenCyclesPerStep
}

// InitCyclesPerThread returns the GPU cycles to initialise one
// walker.
func (m CostModel) InitCyclesPerThread() float64 {
	return m.ThreadSetupCycles + float64(m.InitWalkLen)*m.GenCyclesPerStep
}
