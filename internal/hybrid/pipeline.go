package hybrid

import (
	"fmt"

	"repro/internal/gpu"
)

// Report summarises one simulated generation run.
type Report struct {
	Generator string
	N         int64    // numbers generated
	BlockSize int      // numbers per thread (the paper's S)
	Threads   int      // GPU threads used
	SimNs     gpu.Time // total simulated time
	CPUUtil   float64  // host busy fraction over the run
	GPUUtil   float64  // device busy fraction over the run
	LinkUtil  float64  // PCIe busy fraction over the run

	// Per-number steady-state costs (ns), for the Figure 4 style
	// work-unit report.
	FeedNsPerNumber     float64
	TransferNsPerNumber float64
	GenNsPerNumber      float64
}

// ThroughputGNs returns the achieved rate in GNumbers/s.
func (r Report) ThroughputGNs() float64 {
	if r.SimNs <= 0 {
		return 0
	}
	return float64(r.N) / r.SimNs
}

func (r Report) String() string {
	return fmt.Sprintf("%s: N=%d S=%d T=%d time=%.3f ms rate=%.4f GN/s cpu=%.0f%% gpu=%.0f%% link=%.0f%%",
		r.Generator, r.N, r.BlockSize, r.Threads, r.SimNs/1e6, r.ThroughputGNs(),
		100*r.CPUUtil, 100*r.GPUUtil, 100*r.LinkUtil)
}

// Platform bundles the simulated machine for one experiment run.
type Platform struct {
	Sim    *gpu.Sim
	Device *gpu.Device
	Host   *gpu.Host
	Model  CostModel
}

// NewPlatform builds a fresh simulated paper platform (i7 + Tesla
// C1060) with the given cost model.
func NewPlatform(model CostModel) (*Platform, error) {
	if err := model.validate(); err != nil {
		return nil, err
	}
	sim := gpu.NewSim()
	dev, err := gpu.NewDevice(sim, gpu.TeslaC1060())
	if err != nil {
		return nil, err
	}
	host, err := gpu.NewHost(sim, "cpu")
	if err != nil {
		return nil, err
	}
	return &Platform{Sim: sim, Device: dev, Host: host, Model: model}, nil
}

// GenerateHybrid simulates generating n numbers with the hybrid
// expander-walk PRNG at block size s (each of the n/s threads
// produces s numbers). It books the full FEED/TRANSFER/GENERATE
// pipeline on the platform and returns the timing report — the
// engine behind Figures 1, 3, 4 and 5.
func (p *Platform) GenerateHybrid(n int64, s int) (Report, error) {
	if n < 1 {
		return Report{}, fmt.Errorf("hybrid: n = %d < 1", n)
	}
	if s < 1 {
		return Report{}, fmt.Errorf("hybrid: block size %d < 1", s)
	}
	m := p.Model
	threads := int(n / int64(s))
	if threads < 1 {
		threads = 1
	}
	iterations := int((n + int64(threads) - 1) / int64(threads))

	start := p.Sim.Horizon()
	feedStream := p.Device.NewStream(start)
	genStream := p.Device.NewStream(start)

	// Phase 0 — Algorithm 1: the host produces the seed bits for all
	// threads, ships them, and the device runs the mixing-walk
	// kernel.
	initBytes := int64(m.FeedBytesPerInit() * float64(threads))
	feed := p.Host.Compute("F:init", start, m.FeedChunkOverheadNs+float64(initBytes)/m.FeedBytesPerSec*1e9)
	feedStream.WaitFor(feed.End)
	tr := feedStream.CopyH2D("T:init", initBytes)
	genStream.WaitFor(tr.End)
	genStream.Launch(gpu.Kernel{
		Name:            "G:init",
		Threads:         threads,
		CyclesPerThread: m.InitCyclesPerThread(),
	})

	// Phases 1..iterations — Algorithm 2, pipelined: while the
	// device walks iteration i, the host produces and ships the bits
	// for iteration i+1. Each iteration generates one number per
	// thread.
	perIterBytes := int64(m.FeedBytesPerNumber() * float64(threads))
	feedReady := feed.End
	remaining := n
	for it := 0; it < iterations; it++ {
		batch := int64(threads)
		if batch > remaining {
			batch = remaining
		}
		remaining -= batch
		f := p.Host.Compute("F", feedReady, m.FeedChunkOverheadNs+float64(perIterBytes)/m.FeedBytesPerSec*1e9)
		feedReady = f.End // host moves straight on to the next chunk
		feedStream.WaitFor(f.End)
		t := feedStream.CopyH2D("T", perIterBytes)
		genStream.WaitFor(t.End)
		genStream.Launch(gpu.Kernel{
			Name:            "G",
			Threads:         int(batch),
			CyclesPerThread: m.GenCyclesPerNumber(),
		})
	}
	end := p.Sim.Horizon()

	cores := float64(p.Device.Cores())
	clock := p.Device.Config().ClockHz
	effThreads := float64(threads)
	if effThreads > cores {
		effThreads = cores
	}
	rep := Report{
		Generator: "hybrid-prng",
		N:         n,
		BlockSize: s,
		Threads:   threads,
		SimNs:     end - start,
		CPUUtil:   p.Sim.Utilization(p.Host.Resource(), start, end),
		GPUUtil:   p.Sim.Utilization(p.Device.ComputeResource(), start, end),
		LinkUtil:  p.Sim.Utilization(p.Device.CopyResource(), start, end),

		FeedNsPerNumber:     m.FeedBytesPerNumber() / m.FeedBytesPerSec * 1e9,
		TransferNsPerNumber: m.FeedBytesPerNumber() / p.Device.Config().LinkBps * 1e9,
		// Device-wide per-number generation time:
		// cycles / (clock · min(threads, cores)).
		GenNsPerNumber: m.GenCyclesPerNumber() / (effThreads * clock) * 1e9,
	}
	return rep, nil
}

// GenerateMTBatch simulates the SDK Mersenne Twister batch
// generator: a one-off setup, then a single device kernel producing
// all n numbers into device memory (the pre-generate-and-store model
// the paper criticises). The host plays no part.
func (p *Platform) GenerateMTBatch(n int64) (Report, error) {
	if n < 1 {
		return Report{}, fmt.Errorf("hybrid: n = %d < 1", n)
	}
	m := p.Model
	start := p.Sim.Horizon()
	st := p.Device.NewStream(start)
	st.Launch(gpu.Kernel{Name: "mt:setup", Threads: p.Device.Cores(), CyclesPerThread: m.MTSetupNs / 1e9 * p.Device.Config().ClockHz})
	threads := p.Device.Cores() * 128 // fully occupied batch grid
	if int64(threads) > n {
		threads = int(n)
	}
	per := float64(n) / float64(threads)
	st.Launch(gpu.Kernel{
		Name:            "mt:batch",
		Threads:         threads,
		CyclesPerThread: per * m.MTBatchCyclesPerNumber,
	})
	end := p.Sim.Horizon()
	return Report{
		Generator: "mersenne-twister",
		N:         n,
		BlockSize: int(per),
		Threads:   threads,
		SimNs:     end - start,
		CPUUtil:   p.Sim.Utilization(p.Host.Resource(), start, end),
		GPUUtil:   p.Sim.Utilization(p.Device.ComputeResource(), start, end),
		LinkUtil:  p.Sim.Utilization(p.Device.CopyResource(), start, end),
	}, nil
}

// GenerateCurandDevice simulates the CURAND device API (XORWOW) in
// its on-demand mode: curand_init once, then one state load +
// generate + state store per number.
func (p *Platform) GenerateCurandDevice(n int64) (Report, error) {
	if n < 1 {
		return Report{}, fmt.Errorf("hybrid: n = %d < 1", n)
	}
	m := p.Model
	start := p.Sim.Horizon()
	st := p.Device.NewStream(start)
	st.Launch(gpu.Kernel{Name: "curand:init", Threads: p.Device.Cores(), CyclesPerThread: m.CurandSetupNs / 1e9 * p.Device.Config().ClockHz})
	threads := p.Device.Cores() * 128
	if int64(threads) > n {
		threads = int(n)
	}
	per := float64(n) / float64(threads)
	st.Launch(gpu.Kernel{
		Name:            "curand:gen",
		Threads:         threads,
		CyclesPerThread: per * m.CurandDeviceCyclesPerNumber,
	})
	end := p.Sim.Horizon()
	return Report{
		Generator: "curand-device",
		N:         n,
		BlockSize: int(per),
		Threads:   threads,
		SimNs:     end - start,
		CPUUtil:   p.Sim.Utilization(p.Host.Resource(), start, end),
		GPUUtil:   p.Sim.Utilization(p.Device.ComputeResource(), start, end),
		LinkUtil:  p.Sim.Utilization(p.Device.CopyResource(), start, end),
	}, nil
}

// PureDeviceSerialHybrid simulates the strawman of Figure 1's left
// half: the same hybrid workload but with no overlap — the host
// produces each chunk only after the previous kernel completes.
func (p *Platform) PureDeviceSerialHybrid(n int64, s int) (Report, error) {
	if n < 1 || s < 1 {
		return Report{}, fmt.Errorf("hybrid: bad n=%d s=%d", n, s)
	}
	m := p.Model
	threads := int(n / int64(s))
	if threads < 1 {
		threads = 1
	}
	iterations := int((n + int64(threads) - 1) / int64(threads))
	start := p.Sim.Horizon()
	st := p.Device.NewStream(start)
	ready := start
	perIterBytes := int64(m.FeedBytesPerNumber() * float64(threads))
	for it := 0; it < iterations; it++ {
		f := p.Host.Compute("F", ready, m.FeedChunkOverheadNs+float64(perIterBytes)/m.FeedBytesPerSec*1e9)
		st.WaitFor(f.End)
		st.CopyH2D("T", perIterBytes)
		k := st.Launch(gpu.Kernel{
			Name:            "G",
			Threads:         threads,
			CyclesPerThread: m.GenCyclesPerNumber(),
		})
		ready = k.End // serial: host waits for the device
	}
	end := p.Sim.Horizon()
	return Report{
		Generator: "hybrid-serial (no overlap)",
		N:         n,
		BlockSize: s,
		Threads:   threads,
		SimNs:     end - start,
		CPUUtil:   p.Sim.Utilization(p.Host.Resource(), start, end),
		GPUUtil:   p.Sim.Utilization(p.Device.ComputeResource(), start, end),
		LinkUtil:  p.Sim.Utilization(p.Device.CopyResource(), start, end),
	}, nil
}
