package hybrid

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestDefaultCostModelValid(t *testing.T) {
	m := DefaultCostModel()
	if err := m.validate(); err != nil {
		t.Fatal(err)
	}
	if m.FeedBytesPerNumber() != 24 {
		t.Errorf("feed bytes/number = %g, want 24 (3·64 bits)", m.FeedBytesPerNumber())
	}
	if m.FeedBytesPerInit() != 32 {
		t.Errorf("feed bytes/init = %g, want 32 (64+192 bits)", m.FeedBytesPerInit())
	}
	if m.GenCyclesPerNumber() != 64*56 {
		t.Errorf("gen cycles/number = %g", m.GenCyclesPerNumber())
	}
}

func TestCostModelValidation(t *testing.T) {
	bad := DefaultCostModel()
	bad.WalkLen = 0
	if _, err := NewPlatform(bad); err == nil {
		t.Error("zero walk length should fail")
	}
	bad = DefaultCostModel()
	bad.FeedBytesPerSec = 0
	if _, err := NewPlatform(bad); err == nil {
		t.Error("zero feed rate should fail")
	}
	bad = DefaultCostModel()
	bad.ThreadSetupCycles = -1
	if _, err := NewPlatform(bad); err == nil {
		t.Error("negative overhead should fail")
	}
}

func TestHeadlineThroughput(t *testing.T) {
	// The paper's headline: ≈ 0.07 GNumbers/s at the favourable
	// block size. Accept 0.05–0.09.
	p, err := NewPlatform(DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.GenerateHybrid(10_000_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rate := rep.ThroughputGNs(); rate < 0.05 || rate > 0.09 {
		t.Errorf("throughput = %.4f GN/s, want ≈ 0.07", rate)
	}
}

func TestFigure4UtilisationSplit(t *testing.T) {
	// Paper: at block size 100 the CPU is almost never idle and the
	// GPU idles ≈ 20% of each iteration.
	p, _ := NewPlatform(DefaultCostModel())
	rep, err := p.GenerateHybrid(10_000_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPUUtil < 0.90 {
		t.Errorf("CPU utilisation = %.2f, want ≥ 0.90 (paper: never idle)", rep.CPUUtil)
	}
	if rep.GPUUtil < 0.65 || rep.GPUUtil > 0.95 {
		t.Errorf("GPU utilisation = %.2f, want ≈ 0.80 (paper: ~20%% idle)", rep.GPUUtil)
	}
	if rep.LinkUtil > 0.5 {
		t.Errorf("link utilisation = %.2f; transfer should never be the bottleneck", rep.LinkUtil)
	}
	// Work-unit per-number costs: feed dominates, transfer is tiny.
	if rep.TransferNsPerNumber >= rep.FeedNsPerNumber {
		t.Error("transfer per number should be far below feed per number")
	}
	if rep.GenNsPerNumber >= rep.FeedNsPerNumber {
		t.Error("at S=100 the CPU feed should be the bottleneck")
	}
}

func TestFigure3HybridBeatsBaselinesByAboutTwo(t *testing.T) {
	for _, n := range []int64{5_000_000, 20_000_000, 100_000_000} {
		ph, _ := NewPlatform(DefaultCostModel())
		hyb, err := ph.GenerateHybrid(n, 100)
		if err != nil {
			t.Fatal(err)
		}
		pm, _ := NewPlatform(DefaultCostModel())
		mt, err := pm.GenerateMTBatch(n)
		if err != nil {
			t.Fatal(err)
		}
		pc, _ := NewPlatform(DefaultCostModel())
		cu, err := pc.GenerateCurandDevice(n)
		if err != nil {
			t.Fatal(err)
		}
		rMT := mt.SimNs / hyb.SimNs
		rCU := cu.SimNs / hyb.SimNs
		if rMT < 1.5 || rMT > 3.0 {
			t.Errorf("N=%d: MT/hybrid = %.2f, want ≈ 2", n, rMT)
		}
		if rCU < 1.5 || rCU > 3.0 {
			t.Errorf("N=%d: CURAND/hybrid = %.2f, want ≈ 2", n, rCU)
		}
	}
}

func TestFigure3TimeGrowsLinearly(t *testing.T) {
	p1, _ := NewPlatform(DefaultCostModel())
	a, _ := p1.GenerateHybrid(5_000_000, 100)
	p2, _ := NewPlatform(DefaultCostModel())
	b, _ := p2.GenerateHybrid(50_000_000, 100)
	ratio := b.SimNs / a.SimNs
	if ratio < 8 || ratio > 12 {
		t.Errorf("10× the numbers took %.1f× the time; expect ≈ linear", ratio)
	}
}

func TestFigure5BlockSizeUShape(t *testing.T) {
	// Fixed N, sweep S: the curve must dip to a minimum at a
	// moderate block size (paper: ≈ 100) and rise on both sides.
	const n = 10_000_000
	sweep := []int{1, 10, 100, 1000, 100000}
	times := make([]float64, len(sweep))
	for i, s := range sweep {
		p, _ := NewPlatform(DefaultCostModel())
		rep, err := p.GenerateHybrid(n, s)
		if err != nil {
			t.Fatal(err)
		}
		times[i] = rep.SimNs
	}
	// Identify the minimum.
	minIdx := 0
	for i, v := range times {
		if v < times[minIdx] {
			minIdx = i
		}
	}
	if sweep[minIdx] < 10 || sweep[minIdx] > 1000 {
		t.Errorf("minimum at S=%d, want a moderate block size (times=%v)", sweep[minIdx], times)
	}
	if times[0] <= times[minIdx]*1.2 {
		t.Errorf("S=1 should be clearly slower than the optimum: %v", times)
	}
	if times[len(times)-1] <= times[minIdx]*1.2 {
		t.Errorf("huge S should be clearly slower than the optimum: %v", times)
	}
}

func TestFigure1OverlapBeatsSerial(t *testing.T) {
	const n = 2_000_000
	ph, _ := NewPlatform(DefaultCostModel())
	overlapped, err := ph.GenerateHybrid(n, 100)
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := NewPlatform(DefaultCostModel())
	serial, err := ps.PureDeviceSerialHybrid(n, 100)
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.SimNs >= serial.SimNs {
		t.Errorf("overlap %g ns not faster than serial %g ns", overlapped.SimNs, serial.SimNs)
	}
	// The serial schedule must show a visibly idle CPU.
	if serial.CPUUtil >= overlapped.CPUUtil {
		t.Errorf("serial CPU util %.2f should be below overlapped %.2f", serial.CPUUtil, overlapped.CPUUtil)
	}
}

func TestGenerateValidation(t *testing.T) {
	p, _ := NewPlatform(DefaultCostModel())
	if _, err := p.GenerateHybrid(0, 100); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := p.GenerateHybrid(100, 0); err == nil {
		t.Error("s=0 should fail")
	}
	if _, err := p.GenerateMTBatch(0); err == nil {
		t.Error("mt n=0 should fail")
	}
	if _, err := p.GenerateCurandDevice(0); err == nil {
		t.Error("curand n=0 should fail")
	}
	if _, err := p.PureDeviceSerialHybrid(0, 1); err == nil {
		t.Error("serial n=0 should fail")
	}
}

func TestReportString(t *testing.T) {
	p, _ := NewPlatform(DefaultCostModel())
	rep, _ := p.GenerateHybrid(1000, 10)
	if rep.String() == "" || rep.N != 1000 {
		t.Error("report looks empty")
	}
	if rep.ThroughputGNs() <= 0 {
		t.Error("throughput must be positive")
	}
	zero := Report{}
	if zero.ThroughputGNs() != 0 {
		t.Error("zero report should have zero throughput")
	}
}

func TestGenerateCPUProducesRealNumbers(t *testing.T) {
	rep, nums, err := GenerateCPU(10000, 2, core.Config{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 10000 || len(nums) != 10000 {
		t.Fatalf("report/numbers mismatch: %d/%d", rep.N, len(nums))
	}
	if rep.Wall <= 0 || rep.PerNumberNs <= 0 {
		t.Error("wall time not measured")
	}
	// Distinctness: 10k draws from a 64-bit space.
	seen := make(map[uint64]bool, len(nums))
	for _, v := range nums {
		if seen[v] {
			t.Fatal("duplicate output")
		}
		seen[v] = true
	}
	// Determinism across runs.
	_, nums2, err := GenerateCPU(10000, 2, core.Config{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nums {
		if nums[i] != nums2[i] {
			t.Fatal("CPU generation not reproducible")
		}
	}
	if _, _, err := GenerateCPU(0, 1, core.Config{}, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestGenerateGlibcSerial(t *testing.T) {
	rep, nums, err := GenerateGlibcSerial(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nums) != 5000 || rep.Workers != 1 {
		t.Fatalf("bad report %+v", rep)
	}
	if _, _, err := GenerateGlibcSerial(0, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestProjectedWallNs(t *testing.T) {
	rep := CPUReport{Workers: 4, HostCores: 1}
	rep.Wall = 600 * 1e6 // 600 ms in ns… time.Duration is ns-based
	got := rep.ProjectedWallNs(6)
	want := float64(rep.Wall.Nanoseconds()) / 6
	if math.Abs(got-want) > 1 {
		t.Errorf("projection = %g, want %g", got, want)
	}
	if rep.ProjectedWallNs(0) != float64(rep.Wall.Nanoseconds()) {
		t.Error("cores<1 should clamp to 1")
	}
}

func TestReportStrings(t *testing.T) {
	rep, _, err := GenerateGlibcSerial(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" {
		t.Error("CPUReport string empty")
	}
}
