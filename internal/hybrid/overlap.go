package hybrid

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/rng"
)

// GenerateCPUOverlapped is the real (wall-clock) FEED/GENERATE
// overlap on the CPU: every walker's feed bits are produced by a
// dedicated background feeder goroutine (double-buffered chunks, see
// bitsource.Feeder) while the walker consumes them — the same
// pipeline the simulated platform books as FEED ∥ GENERATE, executed
// with goroutines instead of a GPU. The output stream is identical
// to GenerateCPU's for the same seed (the feeder only changes *when*
// bits are produced, never *which* bits).
func GenerateCPUOverlapped(n int, workers int, cfg core.Config, seed uint64) (CPUReport, []uint64, error) {
	if n < 1 {
		return CPUReport{}, nil, fmt.Errorf("hybrid: n = %d < 1", n)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	feeders := make([]*bitsource.Feeder, workers)
	defer func() {
		for _, f := range feeders {
			if f != nil {
				f.Close()
			}
		}
	}()
	const chunkWords = 4096 // 32 KiB chunks: a few thousand numbers of feed
	var err error
	for i := range feeders {
		src := baselines.NewGlibcRand(uint32(baselines.Mix64(seed + uint64(i))))
		feeders[i], err = bitsource.NewFeeder(src, chunkWords, 2)
		if err != nil {
			return CPUReport{}, nil, err
		}
	}
	pool, err := core.NewPool(workers, cfg, func(i int) *rng.BitReader {
		return feeders[i].Bits()
	})
	if err != nil {
		return CPUReport{}, nil, err
	}
	dst := make([]uint64, n)
	startT := time.Now() //lint:wallclock benchmark wall-clock timing is the measurement itself
	pool.Fill(dst)
	wall := time.Since(startT) //lint:wallclock benchmark wall-clock timing is the measurement itself
	return CPUReport{
		Generator:   "hybrid-prng (cpu, overlapped feed)",
		N:           n,
		Workers:     workers,
		Wall:        wall,
		PerNumberNs: float64(wall.Nanoseconds()) / float64(n),
		HostCores:   runtime.GOMAXPROCS(0),
	}, dst, nil
}
