package hybrid

import "fmt"

// OptimalBlockSize sweeps the block size S on fresh simulated
// platforms and returns the fastest S for generating n numbers,
// refining geometrically around the coarse winner — the automated
// version of the paper's Figure 5 discussion ("the timing is minimum
// at a work load of around 100 numbers per thread").
func OptimalBlockSize(model CostModel, n int64) (bestS int, bestNs float64, err error) {
	if n < 1 {
		return 0, 0, fmt.Errorf("hybrid: n = %d < 1", n)
	}
	timeAt := func(s int) (float64, error) {
		p, err := NewPlatform(model)
		if err != nil {
			return 0, err
		}
		rep, err := p.GenerateHybrid(n, s)
		if err != nil {
			return 0, err
		}
		return rep.SimNs, nil
	}
	// Coarse decade sweep.
	coarse := []int{1, 3, 10, 30, 100, 300, 1000, 3000, 10000}
	bestNs = -1
	for _, s := range coarse {
		if int64(s) > n {
			break
		}
		t, err := timeAt(s)
		if err != nil {
			return 0, 0, err
		}
		if bestNs < 0 || t < bestNs {
			bestS, bestNs = s, t
		}
	}
	// Refine: probe midpoints around the winner.
	for _, s := range []int{bestS / 2, bestS * 3 / 4, bestS * 3 / 2, bestS * 2} {
		if s < 1 || int64(s) > n || s == bestS {
			continue
		}
		t, err := timeAt(s)
		if err != nil {
			return 0, 0, err
		}
		if t < bestNs {
			bestS, bestNs = s, t
		}
	}
	return bestS, bestNs, nil
}
