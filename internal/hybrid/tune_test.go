package hybrid

import "testing"

func TestOptimalBlockSizeNearPaperValue(t *testing.T) {
	s, ns, err := OptimalBlockSize(DefaultCostModel(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ns <= 0 {
		t.Fatal("no time measured")
	}
	// Paper: minimum around S = 100; our model's basin is shallow
	// between ~50 and ~2000.
	if s < 30 || s > 3000 {
		t.Errorf("optimal S = %d, outside the plausible basin", s)
	}
	// The tuned time must beat the clearly-bad extremes.
	p, _ := NewPlatform(DefaultCostModel())
	bad, err := p.GenerateHybrid(10_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ns >= bad.SimNs {
		t.Errorf("tuned %g ns not better than S=1's %g ns", ns, bad.SimNs)
	}
}

func TestOptimalBlockSizeSmallN(t *testing.T) {
	s, _, err := OptimalBlockSize(DefaultCostModel(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if int64(s) > 50 {
		t.Errorf("S = %d exceeds n", s)
	}
	if _, _, err := OptimalBlockSize(DefaultCostModel(), 0); err == nil {
		t.Error("n=0 should fail")
	}
}
