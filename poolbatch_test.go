package hybridprng

import (
	"bytes"
	"sync"
	"testing"
)

// TestPoolGangRefillPreservesStreams pins the gang ring refill's core
// promise: topping up neighbouring rings early changes only when
// words are generated, never which words a caller observes. Each
// Uint64 draw must still return the next unserved word of the stream
// owned by the shard its ticket lands on.
func TestPoolGangRefillPreservesStreams(t *testing.T) {
	const shards, ring, draws = 8, 16, 2048
	p, err := NewPool(WithSeed(99), WithShards(shards), WithShardBuffer(ring))
	if err != nil {
		t.Fatal(err)
	}
	// Reference streams from a twin pool, read via the ring-bypassing
	// audit probe (ShardFill observes the same per-shard stream).
	ref, err := NewPool(WithSeed(99), WithShards(shards), WithShardBuffer(ring))
	if err != nil {
		t.Fatal(err)
	}
	streams := make([][]uint64, shards)
	for i := range streams {
		streams[i] = make([]uint64, draws/shards+ring)
		if err := ref.ShardFill(i, streams[i]); err != nil {
			t.Fatal(err)
		}
	}
	served := make([]int, shards)
	for k := 0; k < draws; k++ {
		v, err := p.Uint64()
		if err != nil {
			t.Fatal(err)
		}
		// Single-goroutine draws visit shards in ticket order; all
		// shards healthy, so draw k lands on shard (k+1) & mask.
		s := (k + 1) & (shards - 1)
		if want := streams[s][served[s]]; v != want {
			t.Fatalf("draw %d (shard %d, word %d): %#x != %#x — gang refill changed a served stream",
				k, s, served[s], v, want)
		}
		served[s]++
	}
}

// TestPoolStatsInvariantUnderGangRefill re-pins Generated == Draws +
// buffered under traffic shaped to trigger gang top-ups constantly
// (tiny rings, many shards): every word a gang sweep generates must
// be accounted for in some ring.
func TestPoolStatsInvariantUnderGangRefill(t *testing.T) {
	p, err := NewPool(WithSeed(3), WithShards(16), WithShardBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]uint64, 777)
	for round := 0; round < 20; round++ {
		for i := 0; i < 50; i++ {
			if _, err := p.Uint64(); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Fill(batch); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	var buffered uint64
	for _, ss := range st.PerShard {
		buffered += uint64(ss.Buffered)
	}
	if g := p.Generated(); g != st.Draws+buffered {
		t.Fatalf("Generated %d != served %d + buffered %d", g, st.Draws, buffered)
	}
}

// TestPoolConcurrentBatchedRefills is the -race stress for the new
// locking: concurrent Uint64 traffic (gang refills TryLock-ing
// neighbours), bulk Fills (groups Lock-ing ascending), Reads and
// Stats snapshots all interleave on small rings.
func TestPoolConcurrentBatchedRefills(t *testing.T) {
	p, err := NewPool(WithSeed(42), WithShards(8), WithShardBuffer(16))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			big := make([]uint64, 1500)
			raw := make([]byte, 333)
			for i := 0; i < 40; i++ {
				switch (w + i) % 4 {
				case 0:
					if _, err := p.Uint64(); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if err := p.Fill(big); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := p.Read(raw); err != nil {
						t.Error(err)
						return
					}
				case 3:
					p.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	var buffered uint64
	for _, ss := range st.PerShard {
		buffered += uint64(ss.Buffered)
	}
	if g := p.Generated(); g != st.Draws+buffered {
		t.Fatalf("Generated %d != served %d + buffered %d after concurrent stress",
			g, st.Draws, buffered)
	}
}

// TestPoolFillBytesMatchesRead pins the zero-copy byte path to the
// portable encoding: a 1-shard pool serves one stream, so FillBytes
// and Read over the same stream must produce identical bytes for
// every alignment and tail shape.
func TestPoolFillBytesMatchesRead(t *testing.T) {
	for _, n := range []int{8, 16, 64, 513, 4096, 4099} {
		a, err := NewPool(WithSeed(11), WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewPool(WithSeed(11), WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, n)
		want := make([]byte, n)
		if err := a.FillBytes(got); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Read(want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: FillBytes diverged from Read", n)
		}
	}
}

// TestPoolFillBytesUnalignedFallback drives the copying fallback with
// a deliberately misaligned buffer; the byte stream must still match.
func TestPoolFillBytesUnalignedFallback(t *testing.T) {
	a, _ := NewPool(WithSeed(17), WithShards(1))
	b, _ := NewPool(WithSeed(17), WithShards(1))
	backing := make([]byte, 121)
	got := backing[1:] // 8-byte-misaligned start
	want := make([]byte, len(got))
	if err := a.FillBytes(got); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("unaligned FillBytes diverged from Read")
	}
}

// TestPoolFillBytesZeroesOnError: a reused response buffer must never
// leak its previous contents through a failed fill — the whole buffer
// comes back zero, including the unaligned tail.
func TestPoolFillBytesZeroesOnError(t *testing.T) {
	p, err := NewPool(WithSeed(5), WithShards(2),
		WithRecovery(RecoveryPolicy{Disabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Shards(); i++ {
		if err := p.InjectFault(i); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{64, 67, 7} {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = 0xAA // stale "previous response"
		}
		if err := p.FillBytes(buf); err == nil {
			t.Fatal("FillBytes on a dead pool must fail")
		}
		for i, c := range buf {
			if c != 0 {
				t.Fatalf("n=%d byte %d = %#x after failed FillBytes, want 0", n, i, c)
			}
		}
	}
}

// BenchmarkPoolFillBytes measures the zero-copy byte path the server
// rides; the steady state must not allocate.
func BenchmarkPoolFillBytes(b *testing.B) {
	p, err := NewPool(WithSeed(1), WithShards(8))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 8192)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.FillBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}
