package hybridprng_test

import (
	"fmt"
	"math/rand"

	hybridprng "repro"
)

// The basic on-demand loop: construct once, draw as the computation
// unfolds.
func ExampleNew() {
	g, err := hybridprng.New(hybridprng.WithSeed(2012))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%#016x\n", g.Uint64())
	fmt.Printf("%#016x\n", g.Uint64())
	// Output:
	// 0x9f5fe090f32e2c0f
	// 0x68171dbda3691363
}

// A Generator drives the entire math/rand toolkit through
// MathRandSource.
func ExampleGenerator_MathRandSource() {
	g, _ := hybridprng.New(hybridprng.WithSeed(7))
	r := rand.New(g.MathRandSource())
	fmt.Println(r.Perm(5))
	v := r.Intn(100)
	fmt.Println(v >= 0 && v < 100)
	// Output:
	// [3 0 1 4 2]
	// true
}

// Checkpoint a stream and resume it elsewhere.
func ExampleGenerator_MarshalBinary() {
	g, _ := hybridprng.New(hybridprng.WithSeed(42))
	g.Skip(100) // advance into the stream

	blob, _ := g.MarshalBinary()
	restored := new(hybridprng.Generator)
	if err := restored.UnmarshalBinary(blob); err != nil {
		panic(err)
	}
	fmt.Println(g.Uint64() == restored.Uint64())
	fmt.Println(restored.Generated())
	// Output:
	// true
	// 101
}

// Shuffle is a drop-in Fisher–Yates.
func ExampleGenerator_Shuffle() {
	g, _ := hybridprng.New(hybridprng.WithSeed(3))
	words := []string{"feed", "transfer", "generate", "walk", "emit"}
	g.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
	fmt.Println(len(words))
	// Output:
	// 5
}

// Parallel pools shard batch generation across independent walkers;
// the result is reproducible for a fixed seed.
func ExampleNewParallel() {
	pool, err := hybridprng.NewParallel(4, hybridprng.WithSeed(99))
	if err != nil {
		panic(err)
	}
	buf := make([]uint64, 6)
	pool.Fill(buf)
	fmt.Println(len(buf), pool.Generated())
	// Output:
	// 6 6
}
