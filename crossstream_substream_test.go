package hybridprng_test

// Cross-stream battery over derived per-tenant substreams: the
// ensemble is ≥256 streams created purely from string keys through
// the registry's collision-audited derivation, with the key sets an
// adversary (or an unlucky naming convention) would produce —
// sequential user IDs, long shared prefixes, and keys differing in a
// single bit. Shoverand's safe-partitioning requirement is that none
// of this structure may survive into the streams; the battery is the
// empirical check.

import (
	"fmt"
	"testing"

	"repro/internal/crossstream"
	"repro/internal/rng"
	"repro/internal/substream"
)

// adversarialKeys builds n distinct tenant keys in three hostile
// families: sequential ("user-0001", "user-0002", …), shared-prefix
// ("tenant/eu-west-1/svc-007", …) and single-bit-differing groups
// (each group shares a prefix and ends in '@' XOR one bit, so the
// group's keys are Hamming distance 1–2 apart as byte strings).
func adversarialKeys(n int) []string {
	keys := make([]string, 0, n)
	half := n / 2
	quarter := n / 4
	for i := 0; len(keys) < half; i++ {
		keys = append(keys, fmt.Sprintf("user-%04d", i+1))
	}
	for i := 0; len(keys) < half+quarter; i++ {
		keys = append(keys, fmt.Sprintf("tenant/eu-west-1/svc-%03d", i))
	}
	// Single-bit flips of '@' (0x40) stay printable: A B D H P `.
	bits := []byte{0, 1, 2, 4, 8, 16, 32}
	for g := 0; len(keys) < n; g++ {
		for _, b := range bits {
			if len(keys) == n {
				break
			}
			keys = append(keys, fmt.Sprintf("bit-%03d-%c", g, '@'^b))
		}
	}
	return keys
}

// subSource adapts one tenant's registry stream to rng.Source,
// buffering a block per Fill like serving traffic does.
type subSource struct {
	t   *testing.T
	reg *substream.Registry
	key string
	buf []uint64
	idx int
}

func newSubSource(t *testing.T, reg *substream.Registry, key string, buf int) *subSource {
	return &subSource{t: t, reg: reg, key: key, buf: make([]uint64, buf), idx: buf}
}

func (s *subSource) Uint64() uint64 {
	if s.idx == len(s.buf) {
		if err := s.reg.Fill(s.key, s.buf); err != nil {
			s.t.Fatalf("substream %q: %v", s.key, err)
		}
		s.idx = 0
	}
	v := s.buf[s.idx]
	s.idx++
	return v
}

// substreamSet derives one battery stream per adversarial key from a
// single registry. maxResident 0 means "all resident" (no churn).
func substreamSet(t *testing.T, n int, rootSeed uint64, maxResident, buf int) crossstream.StreamSet {
	t.Helper()
	if maxResident == 0 {
		maxResident = n
	}
	reg, err := substream.New(substream.Config{RootSeed: rootSeed, MaxResident: maxResident})
	if err != nil {
		t.Fatal(err)
	}
	keys := adversarialKeys(n)
	srcs := make([]rng.Source, n)
	for i, k := range keys {
		srcs[i] = newSubSource(t, reg, k, buf)
	}
	return crossstream.StreamSet{Name: "substream", Names: keys, Sources: srcs}
}

// keyAvalanche is the keyed-derivation analogue of the nearby-seed
// avalanche check: "adjacent seeds" become sequential tenant keys
// ("user-0001" vs "user-0002"), and the first outputs of the derived
// streams must still differ in ~50% of bits — sequential key spelling
// must not leak into the streams.
func keyAvalanche(rootSeed uint64, seeds, words int) *crossstream.AvalancheConfig {
	return &crossstream.AvalancheConfig{
		Stream: func(seed uint64, words int) ([]uint64, error) {
			reg, err := substream.New(substream.Config{RootSeed: rootSeed})
			if err != nil {
				return nil, err
			}
			out := make([]uint64, words)
			if err := reg.Fill(fmt.Sprintf("user-%04d", seed), out); err != nil {
				return nil, err
			}
			return out, nil
		},
		BaseSeed: 1,
		Seeds:    seeds,
		Words:    words,
	}
}

// TestCrossStreamSubstreamShort is the per-PR battery over 256
// derived substreams under the adversarial key families, at the
// short profile's false-alarm budget — the ISSUE 9 acceptance run.
func TestCrossStreamSubstreamShort(t *testing.T) {
	cfg := crossstream.ShortProfile()
	cfg.Avalanche = keyAvalanche(12345, 48, 16)
	set := substreamSet(t, 256, 12345, 0, 256)
	r, err := crossstream.Run(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Streams < 256 {
		t.Fatalf("substream battery covered %d streams, want ≥ 256", r.Streams)
	}
	requireClean(t, r, 8)
}

// TestCrossStreamSubstreamLong scales the keyed ensemble to 2048
// tenants with the sampled-pair long profile.
func TestCrossStreamSubstreamLong(t *testing.T) {
	if testing.Short() {
		t.Skip("thousands-of-streams battery run")
	}
	cfg := crossstream.LongProfile()
	cfg.Avalanche = keyAvalanche(12345, 128, 32)
	r, err := crossstream.Run(substreamSet(t, 2048, 12345, 0, 256), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, r, 8)
}

// TestCrossStreamSubstreamEvictionChurn caps the registry far below
// the stream count, so the battery's draws continually evict, park
// and unpark tenants mid-run. The streams must be bitwise identical
// to an uninterrupted all-resident run — eviction is checkpointing,
// not perturbation — and the ensemble must still pass the prefix
// checks.
func TestCrossStreamSubstreamEvictionChurn(t *testing.T) {
	const n, prefix = 64, 256
	churned := substreamSet(t, n, 777, 4, 32) // 4 resident across 64 tenants, tiny refills
	control := substreamSet(t, n, 777, 0, 32)
	words := make([][]uint64, n)
	for i := 0; i < n; i++ {
		words[i] = make([]uint64, prefix)
		ctl := make([]uint64, prefix)
		for j := 0; j < prefix; j++ {
			words[i][j] = churned.Sources[i].Uint64()
			ctl[j] = control.Sources[i].Uint64()
		}
		for j := range ctl {
			if words[i][j] != ctl[j] {
				t.Fatalf("tenant %q diverged under eviction churn at word %d", churned.Names[i], j)
			}
		}
	}

	cfg := crossstream.ShortProfile()
	cfg.Prefix = prefix
	cfg.CorrWords = 192
	cfg.DiehardScale = 0
	cfg.SmallCrush = false
	srcs := make([]rng.Source, n)
	for i := range srcs {
		srcs[i] = &replaySource{words: words[i]}
	}
	r, err := crossstream.Run(crossstream.StreamSet{Name: "churn", Names: churned.Names, Sources: srcs}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, r, 4)
}
