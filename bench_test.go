package hybridprng

// One benchmark per paper artefact (tables and figures), plus the
// ablations DESIGN.md calls out. Two kinds of numbers appear:
//
//   - real wall-clock Go throughput of this library and the baseline
//     generators (ns/op), and
//   - simulated-platform times from the internal/gpu cost model,
//     reported as the custom metric "sim-ms" (the figures the paper
//     draws were measured on a Tesla C1060 that the simulator stands
//     in for; see DESIGN.md).

import (
	"fmt"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/listrank"
	"repro/internal/photon"
	"repro/internal/rng"
)

// BenchmarkGetNextRand is the headline: one on-demand number from
// the default (glibc-fed, 64-step) generator.
func BenchmarkGetNextRand(b *testing.B) {
	g, err := New(WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Uint64()
	}
}

// BenchmarkTable1SpeedRanking measures the real per-number speed of
// every generator in Table I's line-up (Go implementations; the
// table's device ranking comes from cmd/prngbench -table1).
func BenchmarkTable1SpeedRanking(b *testing.B) {
	gens := []struct {
		name string
		src  func() rng.Source
	}{
		{"glibc-rand", func() rng.Source { return baselines.NewGlibcRand(1) }},
		{"curand-xorwow", func() rng.Source { return baselines.NewXORWOW(1) }},
		{"cudpp-md5", func() rng.Source { return baselines.NewMD5Rand(1) }},
		{"mersenne-twister", func() rng.Source { return baselines.NewMT19937_64(1) }},
		{"hybrid-prng", func() rng.Source { g, _ := New(WithSeed(1)); return g }},
	}
	for _, gen := range gens {
		b.Run(gen.name, func(b *testing.B) {
			src := gen.src()
			b.SetBytes(8)
			for i := 0; i < b.N; i++ {
				src.Uint64()
			}
		})
	}
}

// BenchmarkFigure3Throughput books the Figure 3 size sweep on the
// simulated platform and reports the simulated milliseconds.
func BenchmarkFigure3Throughput(b *testing.B) {
	for _, m := range []int64{5, 100, 1000} {
		n := m * 1_000_000
		b.Run(fmt.Sprintf("hybrid/N=%dM", m), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				p, err := hybrid.NewPlatform(hybrid.DefaultCostModel())
				if err != nil {
					b.Fatal(err)
				}
				rep, err := p.GenerateHybrid(n, 100)
				if err != nil {
					b.Fatal(err)
				}
				last = rep.SimNs / 1e6
			}
			b.ReportMetric(last, "sim-ms")
		})
		b.Run(fmt.Sprintf("mt/N=%dM", m), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				p, _ := hybrid.NewPlatform(hybrid.DefaultCostModel())
				rep, err := p.GenerateMTBatch(n)
				if err != nil {
					b.Fatal(err)
				}
				last = rep.SimNs / 1e6
			}
			b.ReportMetric(last, "sim-ms")
		})
		b.Run(fmt.Sprintf("curand/N=%dM", m), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				p, _ := hybrid.NewPlatform(hybrid.DefaultCostModel())
				rep, err := p.GenerateCurandDevice(n)
				if err != nil {
					b.Fatal(err)
				}
				last = rep.SimNs / 1e6
			}
			b.ReportMetric(last, "sim-ms")
		})
	}
}

// BenchmarkFigure5BlockSize books the block-size sweep (N = 10 M) on
// the simulated platform.
func BenchmarkFigure5BlockSize(b *testing.B) {
	for _, s := range []int{1, 10, 100, 1000, 100000} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				p, err := hybrid.NewPlatform(hybrid.DefaultCostModel())
				if err != nil {
					b.Fatal(err)
				}
				rep, err := p.GenerateHybrid(10_000_000, s)
				if err != nil {
					b.Fatal(err)
				}
				last = rep.SimNs / 1e6
			}
			b.ReportMetric(last, "sim-ms")
		})
	}
}

// BenchmarkFigure6CPUOnly is the real CPU experiment: the hybrid
// generator on goroutine walkers versus serial glibc rand().
func BenchmarkFigure6CPUOnly(b *testing.B) {
	const n = 200_000
	b.Run("hybrid-pool", func(b *testing.B) {
		p, err := NewParallel(4, WithSeed(9))
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]uint64, n)
		b.SetBytes(8 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Fill(buf)
		}
	})
	b.Run("glibc-serial", func(b *testing.B) {
		g := baselines.NewGlibcRand(9)
		buf := make([]uint64, n)
		b.SetBytes(8 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range buf {
				buf[j] = g.Uint64()
			}
		}
	})
}

// BenchmarkFigure7ListRanking books the three Figure 7 variants at
// N = 32 M on the simulated platform, and also measures the real Go
// FIS ranker.
func BenchmarkFigure7ListRanking(b *testing.B) {
	for _, variant := range listrank.Variants() {
		b.Run("sim/"+variant, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				rep, err := listrank.RankTimeSim(variant, 32_000_000, nil)
				if err != nil {
					b.Fatal(err)
				}
				last = rep.SimNs / 1e6
			}
			b.ReportMetric(last, "sim-ms")
		})
	}
	b.Run("real/fisrank-100k", func(b *testing.B) {
		l, err := listrank.NewRandomList(100_000, baselines.NewSplitMix64(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := listrank.FISRank(l, baselines.NewSplitMix64(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("real/fisrank-parallel-100k", func(b *testing.B) {
		l, err := listrank.NewRandomList(100_000, baselines.NewSplitMix64(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _, err := listrank.FISRankParallel(l, 4, func(w int) rng.Source {
				return baselines.NewSplitMix64(uint64(i*8 + w))
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure8Photon books both Figure 8 variants at 16 M
// photons on the simulated platform, and measures the real transport
// code.
func BenchmarkFigure8Photon(b *testing.B) {
	for _, variant := range []string{photon.VariantOriginal, photon.VariantHybrid} {
		b.Run("sim/"+variant, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				rep, err := photon.SimulateTiming(variant, 16_000_000, 267)
				if err != nil {
					b.Fatal(err)
				}
				last = rep.SimNs / 1e6
			}
			b.ReportMetric(last, "sim-ms")
		})
	}
	b.Run("real/transport-1k", func(b *testing.B) {
		tissue := photon.ThreeLayerSkin()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := photon.Simulate(tissue, 1000, baselines.NewSplitMix64(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationWalkLength quantifies the speed side of the
// walk-length knob (quality side: cmd/dieharder -gen
// hybrid-prng-short-walk).
func BenchmarkAblationWalkLength(b *testing.B) {
	for _, l := range []int{4, 16, 64, 128} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			g, err := New(WithSeed(2), WithWalkLength(l))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				g.Uint64()
			}
		})
	}
}

// BenchmarkAblationFeed quantifies the feed-source knob.
func BenchmarkAblationFeed(b *testing.B) {
	for _, feed := range []string{FeedGlibc, FeedANSIC, FeedSplitMix} {
		b.Run(feed, func(b *testing.B) {
			g, err := New(WithSeed(3), WithFeed(feed))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				g.Uint64()
			}
		})
	}
}

// BenchmarkAblationBlockWorkers crosses pool size with batch size on
// the real CPU backend.
func BenchmarkAblationBlockWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p, err := NewParallel(workers, WithSeed(4))
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]uint64, 100*workers)
			b.SetBytes(int64(8 * len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Fill(buf)
			}
		})
	}
}

// BenchmarkAblationExpanderVsDegenerate compares the Gabber–Galil
// walk against a degenerate non-expander walk of the same cost shape
// (a ±1 cycle walk) to show the construction, not the walking, is
// what buys quality; the speed side here, the quality side in the
// expander package's mixing tests.
func BenchmarkAblationExpanderVsDegenerate(b *testing.B) {
	b.Run("gabber-galil", func(b *testing.B) {
		w, err := core.NewWalker(rng.NewBitReader(baselines.NewGlibcRand(5)), core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			w.Next()
		}
	})
	b.Run("cycle-walk", func(b *testing.B) {
		// Same feed, same step count, but the walk moves ±1 on a
		// 2^64 cycle — no expansion, no mixing.
		br := rng.NewBitReader(baselines.NewGlibcRand(5))
		var pos uint64
		for i := 0; i < b.N; i++ {
			for s := 0; s < 64; s++ {
				if br.Bits(3)&1 == 1 {
					pos++
				} else {
					pos--
				}
			}
		}
		_ = pos
	})
}

// BenchmarkBitReader isolates the feed-bit extraction cost.
func BenchmarkBitReader(b *testing.B) {
	br := rng.NewBitReader(baselines.NewSplitMix64(1))
	for i := 0; i < b.N; i++ {
		br.Bits(3)
	}
}

// BenchmarkPool measures the sharded serving surface the randd
// server draws from: ticketed single-word draws, bulk Fill striping
// across shards, and the per-shard ShardFill audit probe the
// cross-stream battery uses.
func BenchmarkPool(b *testing.B) {
	p, err := NewPool(WithSeed(1), WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("uint64", func(b *testing.B) {
		b.SetBytes(8)
		for i := 0; i < b.N; i++ {
			if _, err := p.Uint64(); err != nil {
				b.Fatal(err)
			}
		}
	})
	dst := make([]uint64, 1024)
	b.Run("fill-8KiB", func(b *testing.B) {
		b.SetBytes(8 * 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p.Fill(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shard-fill-8KiB", func(b *testing.B) {
		b.SetBytes(8 * 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p.ShardFill(i&3, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The wide-pool rows measure the batched refill kernel at full
	// lane width: sixteen shards give Fill a whole sixteen-lane
	// lockstep group per sweep, against shard-fill-8KiB's one-walk
	// scalar refill above.
	p16, err := NewPool(WithSeed(1), WithShards(16))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fill-8KiB-x16", func(b *testing.B) {
		b.SetBytes(8 * 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p16.Fill(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	buf := make([]byte, 8*1024)
	b.Run("fill-bytes-8KiB-x16", func(b *testing.B) {
		b.SetBytes(8 * 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p16.FillBytes(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
